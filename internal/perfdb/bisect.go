package perfdb

import (
	"context"
	"fmt"
	"math"

	"dtexl/internal/stats"
)

// The bisector pinpoints the commit that introduced a detected step:
// given the commit range between a Change's LastGood and FirstBad —
// or any wider range the detector's window smeared the step over — it
// binary-searches the range, re-running only the offending
// microbenchmark per probed commit. The narrowing itself is a pure
// function of the measurements (testable with a scripted RunFunc); the
// real per-commit measurement is WorktreeRunner.

// RunFunc measures one benchmark at one commit and returns its metric
// (ns/op for benchmark series). Implementations may be arbitrarily
// noisy or flaky; the bisector medians repeated runs and retries
// errors within its budget.
type RunFunc func(ctx context.Context, commit, benchmark string) (float64, error)

// Bisector narrows a commit range to the first bad commit.
type Bisector struct {
	// Run measures one (commit, benchmark). Required.
	Run RunFunc
	// RunsPerCommit is how many successful measurements are medianed
	// per probed commit (default 3 — tolerates one outlier).
	RunsPerCommit int
	// Budget caps total Run invocations, errors included (default
	// 15*RunsPerCommit — a 2^15-commit range at zero errors). The
	// bisection fails rather than exceeds it.
	Budget int
	// Retries is how many errored runs one commit's measurement
	// absorbs before the bisection fails (default 2).
	Retries int
	// Logf, when non-nil, traces each probe.
	Logf func(format string, args ...any)
}

// Probe records one probed commit during a bisection.
type Probe struct {
	Commit string  `json:"commit"`
	Median float64 `json:"median"`
	// Bad reports the classification: the median was closer to the
	// bad level than the good one.
	Bad bool `json:"bad"`
	// Runs is how many Run calls the probe consumed (errors included).
	Runs int `json:"runs"`
}

// BisectResult is a completed bisection.
type BisectResult struct {
	// Culprit is the first bad commit: the one that introduced the step.
	Culprit string `json:"culprit"`
	// LastGood is the commit immediately before Culprit in the range.
	LastGood string `json:"last_good"`
	// Probes lists every probed commit in probe order.
	Probes []Probe `json:"probes"`
	// Measurements is the total Run calls consumed.
	Measurements int `json:"measurements"`
}

func (b *Bisector) withDefaults() Bisector {
	c := *b
	if c.RunsPerCommit <= 0 {
		c.RunsPerCommit = 3
	}
	if c.Budget <= 0 {
		c.Budget = 15 * c.RunsPerCommit
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Bisect binary-searches commits — ordered oldest to newest, with
// commits[0] known to measure at the good level and the final commit
// at the bad level — for the first commit at the bad level. good and
// bad are the detected step's Before and After medians; a probe
// classifies to whichever level its median is closer to, which is
// robust to noise a fraction of the step size. The endpoints are
// trusted (the detector established them over full windows) and are
// not re-measured.
func (b *Bisector) Bisect(ctx context.Context, commits []string, benchmark string, good, bad float64) (*BisectResult, error) {
	c := b.withDefaults()
	if c.Run == nil {
		return nil, fmt.Errorf("perfdb: bisect: no RunFunc")
	}
	if len(commits) < 2 {
		return nil, fmt.Errorf("perfdb: bisect: need at least 2 commits, got %d", len(commits))
	}
	if good == bad {
		return nil, fmt.Errorf("perfdb: bisect: good and bad levels are equal (%g)", good)
	}

	res := &BisectResult{}
	budget := c.Budget
	lo, hi := 0, len(commits)-1 // invariant: lo good, hi bad
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		probe, err := c.measure(ctx, commits[mid], benchmark, good, bad, &budget)
		if probe != nil {
			res.Probes = append(res.Probes, *probe)
			res.Measurements += probe.Runs
		}
		if err != nil {
			return res, err
		}
		c.Logf("perfdb: bisect: %s -> %g (%s) range now [%d,%d]",
			commits[mid], probe.Median, map[bool]string{true: "bad", false: "good"}[probe.Bad], lo, hi)
		if probe.Bad {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.Culprit = commits[hi]
	res.LastGood = commits[lo]
	return res, nil
}

// measure collects RunsPerCommit successful runs of one commit,
// tolerating up to Retries errors, each call drawing down the shared
// budget, and classifies the median against the two levels.
func (c *Bisector) measure(ctx context.Context, commit, benchmark string, good, bad float64, budget *int) (*Probe, error) {
	probe := &Probe{Commit: commit}
	var values []float64
	errorsLeft := c.Retries
	for len(values) < c.RunsPerCommit {
		if err := ctx.Err(); err != nil {
			return probe, err
		}
		if *budget <= 0 {
			return probe, fmt.Errorf("perfdb: bisect: measurement budget exhausted at %s (%d probes so far)", commit, probe.Runs)
		}
		*budget--
		probe.Runs++
		v, err := c.Run(ctx, commit, benchmark)
		if err != nil {
			if errorsLeft == 0 {
				return probe, fmt.Errorf("perfdb: bisect: %s: retry budget exhausted: %w", commit, err)
			}
			errorsLeft--
			c.Logf("perfdb: bisect: %s: run error (retrying): %v", commit, err)
			continue
		}
		values = append(values, v)
	}
	probe.Median = stats.Median(values)
	probe.Bad = math.Abs(probe.Median-bad) < math.Abs(probe.Median-good)
	return probe, nil
}
