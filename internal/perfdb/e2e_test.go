package perfdb

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"dtexl/internal/stats"
)

// This file is the issue's acceptance test, end to end through the
// real ingest path: a scripted commit history with one injected 20%
// step must be detected — exactly that benchmark, window containing
// the true boundary — and bisected to the exact culprit commit with a
// mocked runner; and a noise-only control history must produce zero
// regressions.

const (
	e2eCommits = 60
	e2eCulprit = 38 // first commit at the regressed level
)

// e2eJitter is deterministic ±1.5% "noise" with no RNG: fixed prime
// strides fold into a repeatable but unstructured sequence.
func e2eJitter(i, k int) float64 {
	x := float64((i*7919+k*104729)%1000)/1000.0 - 0.5
	return 1 + 0.03*x
}

// e2eLevel is BenchmarkHot's true level at commit i: 100 ns/op, +20%
// from the culprit on.
func e2eLevel(i int) float64 {
	if i >= e2eCulprit {
		return 120
	}
	return 100
}

// e2eHistory ingests the scripted history through the real gobench
// text path — three -count repetitions per run, exactly like CI bench
// output — and returns the commit list. withStep=false is the
// noise-only control: both benchmarks flat.
func e2eHistory(t *testing.T, db *DB, withStep bool) []string {
	t.Helper()
	commits := make([]string, e2eCommits)
	for i := 0; i < e2eCommits; i++ {
		commits[i] = fmt.Sprintf("sha%04d", i)
		hot := 100.0
		if withStep {
			hot = e2eLevel(i)
		}
		text := "goos: linux\n"
		for k := 0; k < 3; k++ {
			text += fmt.Sprintf("BenchmarkHot-8     100  %.1f ns/op\n", hot*e2eJitter(i, k))
			text += fmt.Sprintf("BenchmarkStable-8  100  %.1f ns/op\n", 500*e2eJitter(i, k+7))
		}
		text += "PASS\n"
		if _, _, err := db.Ingest(FormatAuto, commits[i], "bench.txt", []byte(text)); err != nil {
			t.Fatal(err)
		}
	}
	return commits
}

func TestE2EStepDetectedAndBisected(t *testing.T) {
	db, _ := openTestDB(t)
	commits := e2eHistory(t, db, true)

	// Detection: exactly one regression, on BenchmarkHot, and the
	// (LastGood, FirstBad] window brackets the true boundary within the
	// detector's documented ±2-commit localization.
	regs := db.Regressions(stats.StepConfig{})
	if len(regs) != 1 {
		t.Fatalf("detector flagged %d regressions, want exactly 1: %+v", len(regs), regs)
	}
	reg := regs[0]
	if reg.Series != "BenchmarkHot" {
		t.Fatalf("flagged series %q, want BenchmarkHot", reg.Series)
	}
	var fbi int
	fmt.Sscanf(reg.FirstBad, "sha%d", &fbi)
	if fbi < e2eCulprit-2 || fbi > e2eCulprit+2 {
		t.Errorf("step localized to %s, want within 2 of sha%04d", reg.FirstBad, e2eCulprit)
	}
	if reg.Step.Ratio < 1.15 || reg.Step.Ratio > 1.25 {
		t.Errorf("step ratio %.3f, want ~1.2", reg.Step.Ratio)
	}

	// Bisection: widen the detector's window to a realistic uncertainty
	// range and hand it to the bisector with a mocked runner that
	// replays the same scripted history (fresh jitter stream — the
	// "re-run" measures new samples, not the ingested ones).
	lo, hi := fbi-5, fbi+5
	if lo < 1 {
		lo = 1
	}
	if hi > e2eCommits-1 {
		hi = e2eCommits - 1
	}
	rng := commits[lo-1 : hi+1] // first entry good, last bad
	runs := 0
	runner := func(_ context.Context, commit, bench string) (float64, error) {
		if bench != "BenchmarkHot" {
			return 0, fmt.Errorf("bisector re-ran %q, want BenchmarkHot", bench)
		}
		i, err := strconv.Atoi(commit[3:])
		if err != nil {
			return 0, fmt.Errorf("unscripted commit %q", commit)
		}
		runs++
		return e2eLevel(i) * e2eJitter(i, 100+runs), nil
	}
	good, bad, err := SeriesLevels(db, "BenchmarkHot", rng)
	if err != nil {
		t.Fatalf("SeriesLevels: %v", err)
	}
	b := Bisector{Run: runner, RunsPerCommit: 3}
	res, err := b.Bisect(context.Background(), rng, "BenchmarkHot", good, bad)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if want := fmt.Sprintf("sha%04d", e2eCulprit); res.Culprit != want {
		t.Errorf("bisector pinpointed %s, want %s (probes: %+v)", res.Culprit, want, res.Probes)
	}
	if res.Measurements != runs {
		t.Errorf("result reports %d measurements, runner saw %d", res.Measurements, runs)
	}
}

// TestE2ENoiseOnlyControl: the same pipeline over the stepless
// history must stay silent — the detector's false-positive budget at
// CI's default thresholds is zero.
func TestE2ENoiseOnlyControl(t *testing.T) {
	db, _ := openTestDB(t)
	e2eHistory(t, db, false)
	if regs := db.Regressions(stats.StepConfig{}); len(regs) != 0 {
		t.Errorf("noise-only history produced %d regressions: %+v", len(regs), regs)
	}
	// Improvements too: nothing stepped in either direction.
	if all := db.Detect(stats.StepConfig{}); len(all) != 0 {
		t.Errorf("noise-only history produced %d detections: %+v", len(all), all)
	}
}
