package perfdb

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"dtexl/internal/stats"
)

// WorktreeRunner is the real RunFunc behind automatic bisection: it
// checks the probed commit out into a disposable `git worktree`,
// measures one microbenchmark there, and tears the worktree down.
// Concurrency is bounded (Parallel) so a bisection — or several —
// cannot fork-bomb the host with go builds; worktrees of the same
// repository share the host's go build cache, so per-commit rebuilds
// only pay for the packages that actually changed.
type WorktreeRunner struct {
	// Repo is the git repository to check commits out of. Required.
	Repo string
	// Scratch is where worktrees are created (default: a fresh
	// os.MkdirTemp directory, removed as each worktree is).
	Scratch string
	// Parallel bounds concurrent worktrees (default 1; values < 1
	// mean 1).
	Parallel int
	// Measure measures one benchmark inside a checked-out tree. The
	// default runs `go test -run ^$ -bench ^<benchmark>$` in dir and
	// returns the median ns/op. Tests substitute scripted measurers.
	Measure func(ctx context.Context, dir, benchmark string) (float64, error)
	// BenchTime is the default Measure's -benchtime (default "0.2s").
	BenchTime string
	// Logf, when non-nil, traces worktree lifecycle.
	Logf func(format string, args ...any)

	initOnce sync.Once
	sem      chan struct{}
	seq      atomic.Int64
	// gitMu serializes `git worktree add/remove` bookkeeping: git
	// deletes .git/worktrees when the last worktree is removed, so a
	// concurrent add can lose its parent directory mid-flight. Only
	// the (fast) bookkeeping is serialized; measurements in the
	// created trees still run in parallel.
	gitMu sync.Mutex
}

func (w *WorktreeRunner) init() {
	w.initOnce.Do(func() {
		n := w.Parallel
		if n < 1 {
			n = 1
		}
		w.sem = make(chan struct{}, n)
	})
}

// Run satisfies RunFunc: measure benchmark at commit in a fresh
// bounded-concurrency worktree.
func (w *WorktreeRunner) Run(ctx context.Context, commit, benchmark string) (_ float64, err error) {
	w.init()
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-ctx.Done():
		return 0, ctx.Err()
	}

	scratch := w.Scratch
	if scratch == "" {
		scratch, err = os.MkdirTemp("", "dtexlperf-bisect-")
		if err != nil {
			return 0, fmt.Errorf("perfdb: worktree: %w", err)
		}
		defer os.RemoveAll(scratch)
	}
	// The sequence number keeps concurrent probes of the *same* commit
	// (noisy-measurement retries) in distinct worktrees.
	dir := filepath.Join(scratch, fmt.Sprintf("wt-%s-%d", sanitizeRawName(commit), w.seq.Add(1)))

	w.gitMu.Lock()
	out, err := w.git(ctx, "worktree", "add", "--detach", dir, commit)
	w.gitMu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("perfdb: worktree add %s: %w: %s", commit, err, strings.TrimSpace(string(out)))
	}
	defer func() {
		// Removal must proceed even when ctx is already canceled.
		w.gitMu.Lock()
		defer w.gitMu.Unlock()
		if out, rerr := w.git(context.Background(), "worktree", "remove", "--force", dir); rerr != nil {
			w.logf("perfdb: worktree remove %s: %v: %s", dir, rerr, strings.TrimSpace(string(out)))
			os.RemoveAll(dir)
			w.git(context.Background(), "worktree", "prune")
		}
	}()

	measure := w.Measure
	if measure == nil {
		measure = w.goBenchMeasure
	}
	w.logf("perfdb: worktree: measuring %s at %s", benchmark, commit)
	return measure(ctx, dir, benchmark)
}

func (w *WorktreeRunner) git(ctx context.Context, args ...string) ([]byte, error) {
	cmd := exec.CommandContext(ctx, "git", append([]string{"-C", w.Repo}, args...)...)
	return cmd.CombinedOutput()
}

func (w *WorktreeRunner) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// goBenchMeasure is the default Measure: one `go test -bench` run of
// exactly the offending microbenchmark across the tree's packages,
// parsed to the median ns/op.
func (w *WorktreeRunner) goBenchMeasure(ctx context.Context, dir, benchmark string) (float64, error) {
	benchTime := w.BenchTime
	if benchTime == "" {
		benchTime = "0.2s"
	}
	name := strings.TrimSuffix(benchmark, "$")
	cmd := exec.CommandContext(ctx, "go", "test", "-run", "^$",
		"-bench", "^"+name+"$", "-benchtime", benchTime, "-count", "1", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return 0, fmt.Errorf("perfdb: go test -bench %s: %w", benchmark, err)
	}
	samples, err := ParseGoBenchSamples(strings.NewReader(string(out)))
	if err != nil {
		return 0, err
	}
	// -bench anchors on the subtest-less name; a benchmark with
	// sub-benchmarks reports under decorated names, so match by prefix.
	var values []float64
	for got, vs := range samples {
		if got == name || strings.HasPrefix(got, name+"/") {
			values = append(values, vs...)
		}
	}
	if len(values) == 0 {
		return 0, fmt.Errorf("perfdb: benchmark %s produced no ns/op lines", benchmark)
	}
	return stats.Median(values), nil
}
