package perfdb

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestGoldenMetricsRoundTrip is the satellite guard against silent
// metric loss: every numeric-bearing field of the real golden-metrics
// documents (internal/pipeline's observability goldens) must surface
// as an ingested series. The expectation is computed by an independent
// JSON walk here — NOT by calling the ingester's own flattener — so if
// ParseGoldenMetrics is ever rewritten around a hand-kept field list,
// a Metrics field it forgot fails this test, i.e. fails CI.
func TestGoldenMetricsRoundTrip(t *testing.T) {
	goldens, err := filepath.Glob(filepath.Join("..", "pipeline", "testdata", "golden_metrics_*.json"))
	if err != nil || len(goldens) == 0 {
		t.Fatalf("no golden metrics documents found: %v", err)
	}
	for _, golden := range goldens {
		golden := golden
		t.Run(filepath.Base(golden), func(t *testing.T) {
			data, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			db, _ := openTestDB(t)
			name := filepath.Base(golden)
			if _, _, err := db.Ingest(FormatAuto, "c1", name, data); err != nil {
				t.Fatalf("Ingest: %v", err)
			}

			prefix := "metrics." + strings.TrimSuffix(name, ".json")
			have := make(map[string]bool)
			for _, s := range db.SeriesNames() {
				have[s] = true
			}

			var doc any
			if err := json.Unmarshal(data, &doc); err != nil {
				t.Fatal(err)
			}
			var missing []string
			walkNumericPaths(doc, prefix, func(path string) {
				if !have[path] {
					missing = append(missing, path)
				}
			})
			sort.Strings(missing)
			if len(missing) > 0 {
				t.Errorf("ingest lost %d numeric Metrics fields:\n  %s",
					len(missing), strings.Join(missing, "\n  "))
			}
			// Sanity floor: a Metrics document is dozens of fields; an
			// ingester that "succeeded" with a handful is broken even if
			// the walk above somehow agreed with it.
			if len(have) < 20 {
				t.Errorf("only %d series ingested from %s — implausibly few", len(have), name)
			}
		})
	}
}

// walkNumericPaths is this test's own notion of which dotted paths a
// metrics document must produce: one per JSON number or bool leaf,
// array elements sharing their array's path. Deliberately independent
// of flattenJSON.
func walkNumericPaths(v any, path string, visit func(string)) {
	switch t := v.(type) {
	case float64, bool:
		visit(path)
	case map[string]any:
		for k, e := range t {
			walkNumericPaths(e, path+"."+k, visit)
		}
	case []any:
		for _, e := range t {
			walkNumericPaths(e, path, visit)
		}
	}
}

// TestGoldenMetricsIntervalsCharted: the Intervals time-series data —
// the dashboard's per-interval charts — must aggregate into series
// with one sample per interval, not collapse to a single value.
func TestGoldenMetricsIntervalsCharted(t *testing.T) {
	goldens, _ := filepath.Glob(filepath.Join("..", "pipeline", "testdata", "golden_metrics_*.json"))
	charted := false
	for _, golden := range goldens {
		data, err := os.ReadFile(golden)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Intervals []any `json:"Intervals"`
		}
		if err := json.Unmarshal(data, &doc); err != nil || len(doc.Intervals) < 2 {
			continue // this golden carries no interval sampling
		}
		db, _ := openTestDB(t)
		name := filepath.Base(golden)
		if _, _, err := db.Ingest(FormatAuto, "c1", name, data); err != nil {
			t.Fatal(err)
		}
		prefix := "metrics." + strings.TrimSuffix(name, ".json") + ".Intervals."
		for _, s := range db.SeriesNames() {
			if !strings.HasPrefix(s, prefix) {
				continue
			}
			charted = true
			pts := db.Series(s)
			if len(pts) != 1 {
				t.Fatalf("%s: %d points, want 1 commit", s, len(pts))
			}
			if got := len(pts[0].Samples); got != len(doc.Intervals) {
				// Nested arrays inside one interval can multiply samples;
				// fewer than the interval count means data was dropped.
				if got < len(doc.Intervals) {
					t.Errorf("%s: %d samples for %d intervals", s, got, len(doc.Intervals))
				}
			}
		}
	}
	if !charted {
		t.Skip("no golden carries >=2 intervals; interval charting not exercised")
	}
}
