package perfdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dtexl/internal/stats"
)

func openTestDB(t *testing.T) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db, dir
}

func TestDBAppendAndSeries(t *testing.T) {
	db, _ := openTestDB(t)
	if err := db.Append([]Point{
		{Commit: "c1", Series: "BenchmarkA", Unit: "ns/op", Samples: []float64{100, 110, 90}},
		{Commit: "c1", Series: "BenchmarkB", Unit: "ns/op", Samples: []float64{7}},
		{Commit: "c2", Series: "BenchmarkA", Unit: "ns/op", Samples: []float64{105}},
	}); err != nil {
		t.Fatalf("Append: %v", err)
	}

	if got := db.Commits(); !reflect.DeepEqual(got, []string{"c1", "c2"}) {
		t.Errorf("Commits = %v, want [c1 c2] (first-appearance order)", got)
	}
	if got := db.SeriesNames(); !reflect.DeepEqual(got, []string{"BenchmarkA", "BenchmarkB"}) {
		t.Errorf("SeriesNames = %v", got)
	}
	if got := db.Unit("BenchmarkA"); got != "ns/op" {
		t.Errorf("Unit = %q", got)
	}

	pts := db.Series("BenchmarkA")
	if len(pts) != 2 {
		t.Fatalf("Series(BenchmarkA) has %d points, want 2", len(pts))
	}
	if pts[0].Commit != "c1" || pts[0].Median != 100 || pts[0].CommitIndex != 0 {
		t.Errorf("point 0 = %+v, want c1 median 100 index 0", pts[0])
	}
	if pts[1].Commit != "c2" || pts[1].Median != 105 || pts[1].CommitIndex != 1 {
		t.Errorf("point 1 = %+v, want c2 median 105 index 1", pts[1])
	}
	if db.Series("nope") != nil {
		t.Error("Series on unknown name should be nil")
	}
}

// TestDBMergeSameCommit: a re-run of the same commit appends into the
// same (series, commit) sample set rather than forking a new point.
func TestDBMergeSameCommit(t *testing.T) {
	db, _ := openTestDB(t)
	db.Append([]Point{{Commit: "c1", Series: "B", Samples: []float64{10, 20}}})
	db.Append([]Point{{Commit: "c1", Series: "B", Samples: []float64{30}}})
	pts := db.Series("B")
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1 merged point", len(pts))
	}
	if !reflect.DeepEqual(pts[0].Samples, []float64{10, 20, 30}) {
		t.Errorf("merged samples = %v", pts[0].Samples)
	}
	if pts[0].Median != 20 {
		t.Errorf("merged median = %v, want 20", pts[0].Median)
	}
}

func TestDBAppendValidation(t *testing.T) {
	db, _ := openTestDB(t)
	for _, p := range []Point{
		{Series: "B", Samples: []float64{1}},
		{Commit: "c", Samples: []float64{1}},
		{Commit: "c", Series: "B"},
	} {
		if err := db.Append([]Point{p}); err == nil {
			t.Errorf("Append(%+v) succeeded, want validation error", p)
		}
	}
	// The failed batches must not have been indexed.
	if got := db.SeriesNames(); len(got) != 0 {
		t.Errorf("rejected points leaked into the index: %v", got)
	}
}

// TestDBReplay: close and reopen — the replayed in-memory view matches
// what was appended, including commit order across multiple batches.
func TestDBReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		commit := fmt.Sprintf("c%02d", i)
		if err := db.Append([]Point{
			{Commit: commit, Series: "BenchmarkHot", Unit: "ns/op", Samples: []float64{100 + float64(i)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Dropped() != 0 {
		t.Errorf("Dropped = %d after clean close", re.Dropped())
	}
	if got := len(re.Commits()); got != 5 {
		t.Fatalf("replayed %d commits, want 5", got)
	}
	pts := re.Series("BenchmarkHot")
	for i, p := range pts {
		if want := fmt.Sprintf("c%02d", i); p.Commit != want || p.Median != 100+float64(i) {
			t.Errorf("replayed point %d = %+v, want %s at %v", i, p, want, 100+float64(i))
		}
	}
	if got := re.Unit("BenchmarkHot"); got != "ns/op" {
		t.Errorf("replayed unit = %q", got)
	}

	// Appends after a replay continue the same log.
	if err := re.Append([]Point{{Commit: "c05", Series: "BenchmarkHot", Samples: []float64{105}}}); err != nil {
		t.Fatalf("append after replay: %v", err)
	}
	if got := len(re.Series("BenchmarkHot")); got != 6 {
		t.Errorf("series has %d points after post-replay append, want 6", got)
	}
}

// TestDBTornTail: a crash mid-append leaves a torn final line; Open
// must drop exactly that line, keep every complete point, and keep the
// log usable for further appends.
func TestDBTornTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.Append([]Point{
		{Commit: "c1", Series: "B", Samples: []float64{1}},
		{Commit: "c2", Series: "B", Samples: []float64{2}},
	})
	db.Close()

	logPath := filepath.Join(dir, logFile)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"commit":"c3","series":"B","sam`) // torn mid-key
	f.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer re.Close()
	if re.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", re.Dropped())
	}
	if got := len(re.Series("B")); got != 2 {
		t.Errorf("kept %d points, want the 2 complete ones", got)
	}
	if err := re.Append([]Point{{Commit: "c3", Series: "B", Samples: []float64{3}}}); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	// The re-append of the lost batch must replay cleanly next time:
	// the torn line is mid-file now, still dropped, everything else kept.
	re.Close()
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := len(re2.Series("B")); got != 3 {
		t.Errorf("after recovery cycle: %d points, want 3", got)
	}
}

func TestRawRoundTrip(t *testing.T) {
	db, _ := openTestDB(t)
	data := []byte("exact\x00bytes\nwith weird \xff content")
	id, err := db.PutRaw("bench run #1 (new).txt", data)
	if err != nil {
		t.Fatalf("PutRaw: %v", err)
	}
	if strings.ContainsAny(id, "/\\# ()") {
		t.Errorf("raw id %q not sanitized", id)
	}
	got, err := db.GetRaw(id)
	if err != nil {
		t.Fatalf("GetRaw: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("raw artifact not byte-identical: got %q want %q", got, data)
	}

	id2, _ := db.PutRaw("second", []byte("x"))
	ids, err := db.RawIDs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{id, id2}) {
		t.Errorf("RawIDs = %v, want [%s %s]", ids, id, id2)
	}
}

// TestGetRawRejectsTraversal: raw ids come from URLs; an id that
// sanitization would have altered (path separators, ..) must be
// rejected, not resolved relative to the raw directory.
func TestGetRawRejectsTraversal(t *testing.T) {
	db, dir := openTestDB(t)
	secret := filepath.Join(dir, "secret")
	os.WriteFile(secret, []byte("s3cret"), 0o644)
	for _, id := range []string{"../secret", "..\\secret", "a/b", ""} {
		if _, err := db.GetRaw(id); err == nil {
			t.Errorf("GetRaw(%q) succeeded, want rejection", id)
		}
	}
	// ".." itself survives sanitization (dots are legal); ensure it
	// still cannot escape: reading it must fail as a directory.
	if data, err := db.GetRaw(".."); err == nil {
		t.Errorf("GetRaw(..) returned %d bytes, want error", len(data))
	}
}

func TestIngestGoBenchText(t *testing.T) {
	db, _ := openTestDB(t)
	text := `goos: linux
BenchmarkHot-8   100  1500 ns/op
BenchmarkHot-8   100  1520 ns/op
BenchmarkCold-8  100  9000 ns/op
PASS
`
	rawID, n, err := db.Ingest(FormatAuto, "abc123", "bench.txt", []byte(text))
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if n != 2 {
		t.Errorf("ingested %d points, want 2", n)
	}
	pts := db.Series("BenchmarkHot")
	if len(pts) != 1 || pts[0].Median != 1510 || !reflect.DeepEqual(pts[0].Samples, []float64{1500, 1520}) {
		t.Errorf("BenchmarkHot = %+v", pts)
	}
	if got := db.Unit("BenchmarkHot"); got != "ns/op" {
		t.Errorf("unit = %q", got)
	}
	raw, err := db.GetRaw(rawID)
	if err != nil || string(raw) != text {
		t.Errorf("raw artifact mismatch: %v, %q", err, raw)
	}
}

func TestIngestBenchguardReport(t *testing.T) {
	db, _ := openTestDB(t)
	report := `{
  "old": "a.txt", "new": "b.txt", "threshold": 0.15,
  "benchmarks": [
    {"name": "BenchmarkHot", "old_ns_per_op": 100, "new_ns_per_op": 120,
     "ratio": 1.2, "old_samples_ns": [100], "new_samples_ns": [120, 118, 121]}
  ],
  "geomean_ratio": 1.2, "pass": false
}`
	_, n, err := db.Ingest(FormatAuto, "abc", "report.json", []byte(report))
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if n != 2 {
		t.Errorf("ingested %d points, want 2 (benchmark + geomean)", n)
	}
	if pts := db.Series("BenchmarkHot"); len(pts) != 1 || !reflect.DeepEqual(pts[0].Samples, []float64{120, 118, 121}) {
		t.Errorf("BenchmarkHot from report = %+v (want new-side samples)", pts)
	}
	if pts := db.Series("benchguard.geomean_ratio"); len(pts) != 1 || pts[0].Median != 1.2 {
		t.Errorf("geomean series = %+v", pts)
	}
}

func TestIngestMetricsJSON(t *testing.T) {
	db, _ := openTestDB(t)
	doc := `{"FramesRendered": 3, "L2": {"Hits": 90, "Misses": 10},
  "PerSCBusy": [0.5, 0.75], "Decoupled": true, "Name": "ignored", "Extra": null}`
	_, n, err := db.Ingest(FormatAuto, "abc", "golden_metrics_decoupled.json", []byte(doc))
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	// FramesRendered, L2.Hits, L2.Misses, PerSCBusy, Decoupled = 5
	// series; the string and null leaves are skipped.
	if n != 5 {
		t.Errorf("ingested %d points, want 5: %v", n, db.SeriesNames())
	}
	prefix := "metrics.golden_metrics_decoupled"
	if pts := db.Series(prefix + ".PerSCBusy"); len(pts) != 1 || !reflect.DeepEqual(pts[0].Samples, []float64{0.5, 0.75}) {
		t.Errorf("array leaf aggregated wrong: %+v", pts)
	}
	if pts := db.Series(prefix + ".Decoupled"); len(pts) != 1 || pts[0].Median != 1 {
		t.Errorf("bool leaf = %+v, want 1", pts)
	}
	if pts := db.Series(prefix + ".L2.Hits"); len(pts) != 1 || pts[0].Median != 90 {
		t.Errorf("nested leaf = %+v", pts)
	}
}

func TestIngestErrors(t *testing.T) {
	db, _ := openTestDB(t)
	cases := []struct {
		name           string
		format, commit string
		data           string
	}{
		{"no commit", FormatAuto, "", "BenchmarkX 1 5 ns/op"},
		{"undetectable", FormatAuto, "c", "not a bench artifact"},
		{"bad format name", "nonsense", "c", "BenchmarkX 1 5 ns/op"},
		{"empty gobench", FormatGoBench, "c", "PASS\n"},
		{"benchguard no rows", FormatBenchguard, "c", `{"benchmarks": [], "geomean_ratio": 1}`},
		{"metrics no numbers", FormatMetrics, "c", `{"a": "strings only"}`},
	}
	for _, tc := range cases {
		if _, _, err := db.Ingest(tc.format, tc.commit, "f", []byte(tc.data)); err == nil {
			t.Errorf("%s: Ingest succeeded, want error", tc.name)
		}
	}
	// Failed ingests must not leave raw artifacts behind points-less.
	if ids, _ := db.RawIDs(); len(ids) != 0 {
		t.Errorf("failed ingests stored raw artifacts: %v", ids)
	}
}

func TestDetectFormat(t *testing.T) {
	cases := []struct {
		data string
		want string
	}{
		{"BenchmarkX-8  100  5 ns/op", FormatGoBench},
		{`{"benchmarks": [{"name": "B"}], "geomean_ratio": 1.0}`, FormatBenchguard},
		{`{"FramesRendered": 3}`, FormatMetrics},
		{"just some text", ""},
	}
	for _, tc := range cases {
		if got := DetectFormat([]byte(tc.data)); got != tc.want {
			t.Errorf("DetectFormat(%q) = %q, want %q", tc.data, got, tc.want)
		}
	}
}

// TestDetectMapsStepToCommitWindow: the detector output must name the
// series-local commits either side of the boundary — the exact range
// handed to the bisector.
func TestDetectMapsStepToCommitWindow(t *testing.T) {
	db, _ := openTestDB(t)
	// 40 commits, clean 30% step at commit index 20.
	for i := 0; i < 40; i++ {
		v := 100.0
		if i >= 20 {
			v = 130
		}
		// Tiny deterministic ripple so MAD is nonzero.
		v += float64(i%3) * 0.2
		db.Append([]Point{{Commit: fmt.Sprintf("c%02d", i), Series: "BenchmarkHot", Unit: "ns/op", Samples: []float64{v}}})
	}
	changes := db.Detect(stats.StepConfig{})
	if len(changes) != 1 {
		t.Fatalf("Detect found %d changes, want 1: %+v", len(changes), changes)
	}
	c := changes[0]
	if c.Series != "BenchmarkHot" || !c.Regression {
		t.Errorf("change = %+v, want BenchmarkHot regression", c)
	}
	// Localization tolerance ±2 commits around the true boundary 19|20.
	lg, fb := c.LastGood, c.FirstBad
	var lgi, fbi int
	fmt.Sscanf(lg, "c%d", &lgi)
	fmt.Sscanf(fb, "c%d", &fbi)
	if fbi != lgi+1 {
		t.Errorf("FirstBad %s is not LastGood %s's successor", fb, lg)
	}
	if fbi < 18 || fbi > 22 {
		t.Errorf("step localized to %s..%s, want near c19..c20", lg, fb)
	}
	if reg := db.Regressions(stats.StepConfig{}); len(reg) != 1 {
		t.Errorf("Regressions = %d, want 1", len(reg))
	}
}

// TestDetectImprovementNotRegression: a step down is reported by
// Detect but filtered out of Regressions.
func TestDetectImprovementNotRegression(t *testing.T) {
	db, _ := openTestDB(t)
	for i := 0; i < 40; i++ {
		v := 130.0
		if i >= 20 {
			v = 100
		}
		v += float64(i%3) * 0.2
		db.Append([]Point{{Commit: fmt.Sprintf("c%02d", i), Series: "B", Samples: []float64{v}}})
	}
	all := db.Detect(stats.StepConfig{})
	if len(all) != 1 || all[0].Regression {
		t.Fatalf("Detect = %+v, want one improvement", all)
	}
	if reg := db.Regressions(stats.StepConfig{}); len(reg) != 0 {
		t.Errorf("Regressions reported an improvement: %+v", reg)
	}
}
