package perfdb

import "net/http"

// The dashboard is one dependency-free HTML page: it renders the
// series index, charts the selected series as an inline SVG (median
// line over commit order, sample dots, detected steps as vertical
// markers), and lists the current regression verdicts. The flattened
// golden-metrics series (metrics.*.Intervals.*) chart the interval-
// sampling data the same way: their samples are the per-interval
// values of one run.
const dashboardHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>dtexlperf</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 1.5rem; color: #1a1a2e; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
  select { max-width: 100%; font: inherit; padding: 2px; }
  svg { border: 1px solid #d5d5e0; background: #fcfcff; margin-top: .5rem; }
  table { border-collapse: collapse; margin-top: .5rem; }
  th, td { border: 1px solid #d5d5e0; padding: 2px 8px; text-align: left; font-size: 13px; }
  .reg td:nth-child(4) { color: #b00020; font-weight: 600; }
  .imp td:nth-child(4) { color: #00600f; }
  code { background: #eef; padding: 0 3px; }
  #meta { color: #555; font-size: 13px; }
</style>
</head>
<body>
<h1>dtexlperf — continuous perf</h1>
<div>
  <select id="series"></select>
  <span id="meta"></span>
</div>
<svg id="chart" width="900" height="280" viewBox="0 0 900 280"></svg>
<h2>step changes (<span id="nreg">…</span>)</h2>
<table id="regs"><thead><tr>
  <th>series</th><th>last good</th><th>first bad</th><th>ratio</th><th>score</th>
</tr></thead><tbody></tbody></table>
<script>
const svgNS = 'http://www.w3.org/2000/svg';
function el(tag, attrs, parent) {
  const e = document.createElementNS(svgNS, tag);
  for (const k in attrs) e.setAttribute(k, attrs[k]);
  if (parent) parent.appendChild(e);
  return e;
}
async function j(url) { const r = await fetch(url); if (!r.ok) throw new Error(url + ': ' + r.status); return r.json(); }

let steps = [];
async function drawSeries(name) {
  const data = await j('/api/series?name=' + encodeURIComponent(name));
  const pts = data.points;
  const svg = document.getElementById('chart');
  svg.innerHTML = '';
  document.getElementById('meta').textContent =
    pts.length + ' commits' + (data.unit ? ', ' + data.unit : '');
  if (!pts.length) return;
  const M = {l: 70, r: 15, t: 12, b: 40}, W = 900 - M.l - M.r, H = 280 - M.t - M.b;
  let lo = Infinity, hi = -Infinity;
  for (const p of pts) for (const s of p.samples.concat([p.median])) { lo = Math.min(lo, s); hi = Math.max(hi, s); }
  if (lo === hi) { lo -= 1; hi += 1; }
  const pad = 0.07 * (hi - lo); lo -= pad; hi += pad;
  const X = i => M.l + (pts.length === 1 ? W / 2 : W * i / (pts.length - 1));
  const Y = v => M.t + H * (1 - (v - lo) / (hi - lo));
  el('line', {x1: M.l, y1: M.t + H, x2: M.l + W, y2: M.t + H, stroke: '#888'}, svg);
  el('line', {x1: M.l, y1: M.t, x2: M.l, y2: M.t + H, stroke: '#888'}, svg);
  for (let g = 0; g <= 4; g++) {
    const v = lo + (hi - lo) * g / 4;
    const t = el('text', {x: M.l - 6, y: Y(v) + 4, 'text-anchor': 'end', 'font-size': 11, fill: '#555'}, svg);
    t.textContent = v.toPrecision(4);
    el('line', {x1: M.l, y1: Y(v), x2: M.l + W, y2: Y(v), stroke: '#eee'}, svg);
  }
  for (const s of steps) if (s.series === name) {
    const i = pts.findIndex(p => p.commit === s.first_bad);
    if (i >= 0) el('line', {x1: X(i), y1: M.t, x2: X(i), y2: M.t + H,
      stroke: s.regression ? '#b00020' : '#00600f', 'stroke-dasharray': '4 3'}, svg);
  }
  for (let i = 0; i < pts.length; i++)
    for (const s of pts[i].samples)
      el('circle', {cx: X(i), cy: Y(s), r: 1.6, fill: '#99a'}, svg);
  el('polyline', {points: pts.map((p, i) => X(i) + ',' + Y(p.median)).join(' '),
    fill: 'none', stroke: '#2a4b8d', 'stroke-width': 1.6}, svg);
  const lbl = n => pts[n].commit.slice(0, 10);
  const t0 = el('text', {x: M.l, y: 272, 'font-size': 11, fill: '#555'}, svg);
  t0.textContent = lbl(0);
  if (pts.length > 1) {
    const t1 = el('text', {x: M.l + W, y: 272, 'text-anchor': 'end', 'font-size': 11, fill: '#555'}, svg);
    t1.textContent = lbl(pts.length - 1);
  }
}
async function main() {
  const infos = await j('/api/series');
  steps = await j('/api/regressions?all=1');
  const sel = document.getElementById('series');
  for (const s of infos) {
    const o = document.createElement('option');
    o.value = s.name;
    o.textContent = s.name + ' (' + s.points + ')';
    sel.appendChild(o);
  }
  sel.onchange = () => drawSeries(sel.value);
  const tb = document.querySelector('#regs tbody');
  const regs = steps.filter(s => s.regression);
  document.getElementById('nreg').textContent =
    regs.length + ' regressions, ' + (steps.length - regs.length) + ' improvements';
  for (const s of steps) {
    const tr = document.createElement('tr');
    tr.className = s.regression ? 'reg' : 'imp';
    for (const v of [s.series, s.last_good.slice(0, 12), s.first_bad.slice(0, 12),
                     s.step.ratio.toFixed(3) + 'x', s.step.score.toFixed(1)]) {
      const td = document.createElement('td');
      td.textContent = v;
      tr.appendChild(td);
    }
    tr.onclick = () => { sel.value = s.series; drawSeries(s.series); };
    tb.appendChild(tr);
  }
  if (infos.length) { sel.value = infos[0].name; drawSeries(infos[0].name); }
}
main().catch(e => document.getElementById('meta').textContent = String(e));
</script>
</body>
</html>
`

func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashboardHTML))
}
