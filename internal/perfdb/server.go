package perfdb

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"dtexl/internal/netauth"
	"dtexl/internal/stats"
)

// Server exposes the database over HTTP: a JSON API for series,
// regression verdicts and bisection, byte-identical raw-artifact
// serving, remote ingest, and a small self-contained dashboard that
// charts any series — including the interval-sampling series flattened
// out of golden-metrics documents (metrics.*.Intervals.*).
type Server struct {
	cfg ServerConfig
}

// ServerConfig wires a Server.
type ServerConfig struct {
	// DB is the database to serve. Required.
	DB *DB
	// Bisect, when non-nil, enables POST /api/bisect. Usually a
	// WorktreeRunner's Run.
	Bisect RunFunc
	// Repo, when set, lets /api/bisect expand a (last_good, first_bad)
	// pair into the commit range via `git rev-list`; otherwise the
	// request must carry the commit list itself.
	Repo string
	// BisectTimeout bounds one /api/bisect request (default 10m).
	BisectTimeout time.Duration
	// AuthToken, when set, gates the write endpoints (POST /api/ingest,
	// POST /api/bisect) behind bearer-token auth. Reads — the dashboard,
	// series, regressions, raw artifacts — stay open: the service is a
	// chart people look at, but only CI may feed it.
	AuthToken string
	// Logf, when non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
}

// NewServer builds a Server. It panics if cfg.DB is nil (a wiring bug,
// not a runtime condition).
func NewServer(cfg ServerConfig) *Server {
	if cfg.DB == nil {
		panic("perfdb: NewServer needs a DB")
	}
	if cfg.BisectTimeout <= 0 {
		cfg.BisectTimeout = 10 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Server{cfg: cfg}
}

// Handler mounts the API:
//
//	GET  /                    dashboard
//	GET  /healthz             process liveness
//	GET  /api/commits         global commit order
//	GET  /api/series          series index
//	GET  /api/series?name=X   one assembled series
//	GET  /api/regressions     step detection over every series
//	GET  /api/raw             raw artifact ids
//	GET  /api/raw/{id}        one artifact, byte-identical to ingest
//	POST /api/ingest          ingest an artifact (query: commit, name, format)
//	POST /api/bisect          bisect a regression to its culprit commit
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	mux.HandleFunc("GET /api/commits", s.handleCommits)
	mux.HandleFunc("GET /api/series", s.handleSeries)
	mux.HandleFunc("GET /api/regressions", s.handleRegressions)
	mux.HandleFunc("GET /api/raw", s.handleRawList)
	mux.HandleFunc("GET /api/raw/{id}", s.handleRawGet)
	mux.HandleFunc("POST /api/ingest", s.handleIngest)
	mux.HandleFunc("POST /api/bisect", s.handleBisect)
	return netauth.Middleware(s.cfg.AuthToken, netauth.OpenReadOnly, mux)
}

// apiError is the JSON body of every non-200.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleCommits(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.DB.Commits())
}

// SeriesInfo is one row of the series index.
type SeriesInfo struct {
	Name   string `json:"name"`
	Unit   string `json:"unit,omitempty"`
	Points int    `json:"points"`
}

// SeriesResponse is the body of GET /api/series?name=X.
type SeriesResponse struct {
	Name   string        `json:"name"`
	Unit   string        `json:"unit,omitempty"`
	Points []SeriesPoint `json:"points"`
}

func (s *Server) handleSeries(w http.ResponseWriter, req *http.Request) {
	db := s.cfg.DB
	name := req.URL.Query().Get("name")
	if name == "" {
		names := db.SeriesNames()
		infos := make([]SeriesInfo, 0, len(names))
		for _, n := range names {
			infos = append(infos, SeriesInfo{Name: n, Unit: db.Unit(n), Points: len(db.Series(n))})
		}
		writeJSON(w, http.StatusOK, infos)
		return
	}
	pts := db.Series(name)
	if pts == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("unknown series %q", name)})
		return
	}
	writeJSON(w, http.StatusOK, SeriesResponse{Name: name, Unit: db.Unit(name), Points: pts})
}

// stepConfigFromQuery reads detector overrides (window, k, minrel)
// from the query string, leaving zero values for the defaults.
func stepConfigFromQuery(q map[string][]string) (stats.StepConfig, error) {
	var cfg stats.StepConfig
	get := func(key string) (float64, bool, error) {
		vs := q[key]
		if len(vs) == 0 || vs[0] == "" {
			return 0, false, nil
		}
		v, err := strconv.ParseFloat(vs[0], 64)
		if err != nil || v <= 0 {
			return 0, false, fmt.Errorf("bad %s=%q", key, vs[0])
		}
		return v, true, nil
	}
	if v, ok, err := get("window"); err != nil {
		return cfg, err
	} else if ok {
		cfg.Window = int(v)
	}
	if v, ok, err := get("k"); err != nil {
		return cfg, err
	} else if ok {
		cfg.K = v
	}
	if v, ok, err := get("minrel"); err != nil {
		return cfg, err
	} else if ok {
		cfg.MinRel = v
	}
	return cfg, nil
}

func (s *Server) handleRegressions(w http.ResponseWriter, req *http.Request) {
	cfg, err := stepConfigFromQuery(req.URL.Query())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	var changes []Change
	if req.URL.Query().Get("all") == "1" {
		changes = s.cfg.DB.Detect(cfg)
	} else {
		changes = s.cfg.DB.Regressions(cfg)
	}
	if changes == nil {
		changes = []Change{}
	}
	writeJSON(w, http.StatusOK, changes)
}

func (s *Server) handleRawList(w http.ResponseWriter, _ *http.Request) {
	ids, err := s.cfg.DB.RawIDs()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ids)
}

func (s *Server) handleRawGet(w http.ResponseWriter, req *http.Request) {
	data, err := s.cfg.DB.GetRaw(req.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// IngestResponse is the body of POST /api/ingest.
type IngestResponse struct {
	RawID  string `json:"raw_id"`
	Points int    `json:"points"`
}

func (s *Server) handleIngest(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	commit := q.Get("commit")
	if commit == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "ingest needs ?commit="})
		return
	}
	name := q.Get("name")
	if name == "" {
		name = "artifact"
	}
	format := q.Get("format")
	data, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 64<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	rawID, n, err := s.cfg.DB.Ingest(format, commit, name, data)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	s.cfg.Logf("perfdb: ingested %s as %s (%d points) at %s", name, rawID, n, commit)
	writeJSON(w, http.StatusOK, IngestResponse{RawID: rawID, Points: n})
}

// BisectRequest is the body of POST /api/bisect. Either Commits is the
// full range (oldest first, first commit good, last bad), or LastGood
// and FirstBad name the range endpoints and the server expands them
// via `git rev-list` (requires a configured repo).
type BisectRequest struct {
	Benchmark string   `json:"benchmark"`
	Commits   []string `json:"commits,omitempty"`
	LastGood  string   `json:"last_good,omitempty"`
	FirstBad  string   `json:"first_bad,omitempty"`
	// Good and Bad are the step's Before/After levels. If both are
	// zero they are taken from the ingested series at the endpoints.
	Good float64 `json:"good,omitempty"`
	Bad  float64 `json:"bad,omitempty"`
	// RunsPerCommit and Budget override Bisector defaults when > 0.
	RunsPerCommit int `json:"runs_per_commit,omitempty"`
	Budget        int `json:"budget,omitempty"`
}

func (s *Server) handleBisect(w http.ResponseWriter, req *http.Request) {
	if s.cfg.Bisect == nil {
		writeJSON(w, http.StatusNotImplemented, apiError{Error: "bisection is not configured (start dtexlperf with -repo)"})
		return
	}
	var br BisectRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20)).Decode(&br); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if br.Benchmark == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bisect needs a benchmark"})
		return
	}
	commits := br.Commits
	if len(commits) == 0 {
		if br.LastGood == "" || br.FirstBad == "" {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bisect needs commits or last_good+first_bad"})
			return
		}
		if s.cfg.Repo == "" {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "no repo configured: pass the commit range explicitly"})
			return
		}
		var err error
		commits, err = RevListRange(req.Context(), s.cfg.Repo, br.LastGood, br.FirstBad)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
	}
	good, bad := br.Good, br.Bad
	if good == 0 && bad == 0 {
		var err error
		good, bad, err = SeriesLevels(s.cfg.DB, br.Benchmark, commits)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
	}
	ctx, cancel := context.WithTimeout(req.Context(), s.cfg.BisectTimeout)
	defer cancel()
	b := Bisector{
		Run:           s.cfg.Bisect,
		RunsPerCommit: br.RunsPerCommit,
		Budget:        br.Budget,
		Logf:          s.cfg.Logf,
	}
	res, err := b.Bisect(ctx, commits, br.Benchmark, good, bad)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	s.cfg.Logf("perfdb: bisected %s to %s (%d measurements)", br.Benchmark, res.Culprit, res.Measurements)
	writeJSON(w, http.StatusOK, res)
}

// RevListRange expands (lastGood, firstBad] to the inclusive bisection
// range [lastGood, ..., firstBad], oldest first, via `git rev-list`.
func RevListRange(ctx context.Context, repo, lastGood, firstBad string) ([]string, error) {
	cmd := exec.CommandContext(ctx, "git", "-C", repo,
		"rev-list", "--reverse", lastGood+".."+firstBad)
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("git rev-list %s..%s: %w", lastGood, firstBad, err)
	}
	commits := []string{lastGood}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			commits = append(commits, line)
		}
	}
	if len(commits) < 2 {
		return nil, fmt.Errorf("empty range %s..%s", lastGood, firstBad)
	}
	return commits, nil
}

// SeriesLevels derives the good/bad reference levels of a bisection
// from the ingested series at the range endpoints.
func SeriesLevels(db *DB, benchmark string, commits []string) (good, bad float64, err error) {
	pts := db.Series(benchmark)
	if pts == nil {
		return 0, 0, fmt.Errorf("unknown series %q and no explicit good/bad levels", benchmark)
	}
	byCommit := make(map[string]float64, len(pts))
	for _, p := range pts {
		byCommit[p.Commit] = p.Median
	}
	var okG, okB bool
	if good, okG = byCommit[commits[0]]; !okG {
		return 0, 0, fmt.Errorf("series %q has no point at %s; pass explicit levels", benchmark, commits[0])
	}
	if bad, okB = byCommit[commits[len(commits)-1]]; !okB {
		return 0, 0, fmt.Errorf("series %q has no point at %s; pass explicit levels", benchmark, commits[len(commits)-1])
	}
	return good, bad, nil
}

// ResolveBisectRange is the CLI entry point for a (good, bad) commit
// pair: rev-list expansion plus series-derived levels in one call.
func ResolveBisectRange(ctx context.Context, db *DB, repo, benchmark, lastGood, firstBad string) (commits []string, good, bad float64, err error) {
	commits, err = RevListRange(ctx, repo, lastGood, firstBad)
	if err != nil {
		return nil, 0, 0, err
	}
	good, bad, err = SeriesLevels(db, benchmark, commits)
	if err != nil {
		return nil, 0, 0, err
	}
	return commits, good, bad, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
