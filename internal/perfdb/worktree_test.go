package perfdb

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gitRepo builds a real repository whose history encodes a perf
// series: commit i writes "<value>\n" to value.txt, with a 25% step at
// stepAt. Returns the repo dir and the commit hashes, oldest first.
func gitRepo(t *testing.T, n, stepAt int) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	git := func(args ...string) string {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-C", dir,
			"-c", "user.name=perfdb-test", "-c", "user.email=perfdb@test",
			"-c", "commit.gpgsign=false"}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("git %v: %v: %s", args, err, out)
		}
		return strings.TrimSpace(string(out))
	}
	git("init", "-q", "-b", "main")
	commits := make([]string, n)
	for i := 0; i < n; i++ {
		v := 100.0
		if i >= stepAt {
			v = 125
		}
		if err := os.WriteFile(filepath.Join(dir, "value.txt"),
			[]byte(fmt.Sprintf("%g\n", v)), 0o644); err != nil {
			t.Fatal(err)
		}
		git("add", "value.txt")
		git("commit", "-q", "--allow-empty", "-m", fmt.Sprintf("commit %d", i))
		commits[i] = git("rev-parse", "HEAD")
	}
	return dir, commits
}

// readValueMeasure is a scripted Measure: it proves the runner checked
// the right commit out by reading the tree's value.txt.
func readValueMeasure(ctx context.Context, dir, _ string) (float64, error) {
	data, err := os.ReadFile(filepath.Join(dir, "value.txt"))
	if err != nil {
		return 0, err
	}
	return strconv.ParseFloat(strings.TrimSpace(string(data)), 64)
}

// TestWorktreeRunnerChecksOutCommit: Run must measure the named
// commit's tree, not HEAD's.
func TestWorktreeRunnerChecksOutCommit(t *testing.T) {
	repo, commits := gitRepo(t, 6, 3)
	w := &WorktreeRunner{Repo: repo, Scratch: t.TempDir(), Measure: readValueMeasure}
	for i, want := range []float64{100, 100, 100, 125, 125, 125} {
		got, err := w.Run(context.Background(), commits[i], "BenchmarkX")
		if err != nil {
			t.Fatalf("Run(%s): %v", commits[i], err)
		}
		if got != want {
			t.Errorf("commit %d measured %v, want %v", i, got, want)
		}
	}
}

// TestWorktreeRunnerCleansUp: every worktree is removed after its
// measurement — both the directory and git's bookkeeping.
func TestWorktreeRunnerCleansUp(t *testing.T) {
	repo, commits := gitRepo(t, 3, 1)
	scratch := t.TempDir()
	w := &WorktreeRunner{Repo: repo, Scratch: scratch, Measure: readValueMeasure}
	for _, c := range commits {
		if _, err := w.Run(context.Background(), c, "B"); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("scratch dir still holds %d entries after runs", len(ents))
	}
	out, err := exec.Command("git", "-C", repo, "worktree", "list").Output()
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(string(out)), "\n") + 1; lines != 1 {
		t.Errorf("git still lists %d worktrees:\n%s", lines, out)
	}
}

// TestWorktreeRunnerCleansUpOnMeasureError: a failing measurement must
// not leak its worktree.
func TestWorktreeRunnerCleansUpOnMeasureError(t *testing.T) {
	repo, commits := gitRepo(t, 2, 1)
	scratch := t.TempDir()
	w := &WorktreeRunner{Repo: repo, Scratch: scratch,
		Measure: func(context.Context, string, string) (float64, error) {
			return 0, fmt.Errorf("scripted measure failure")
		}}
	if _, err := w.Run(context.Background(), commits[0], "B"); err == nil {
		t.Fatal("Run succeeded with a failing Measure")
	}
	if ents, _ := os.ReadDir(scratch); len(ents) != 0 {
		t.Errorf("failed run leaked %d scratch entries", len(ents))
	}
}

// TestWorktreeRunnerBoundedParallelism: many concurrent Runs, bound 2.
// Run under -race in CI, this doubles as the data-race check on the
// runner's shared state (semaphore, sequence counter).
func TestWorktreeRunnerBoundedParallelism(t *testing.T) {
	repo, commits := gitRepo(t, 4, 2)
	var active, peak atomic.Int64
	w := &WorktreeRunner{
		Repo: repo, Scratch: t.TempDir(), Parallel: 2,
		Measure: func(ctx context.Context, dir, bench string) (float64, error) {
			n := active.Add(1)
			defer active.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond) // hold the slot so overlap is observable
			return readValueMeasure(ctx, dir, bench)
		},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := w.Run(context.Background(), commits[i%len(commits)], "B")
			if err != nil {
				errs <- err
				return
			}
			want := 100.0
			if i%len(commits) >= 2 {
				want = 125
			}
			if got != want {
				errs <- fmt.Errorf("run %d measured %v, want %v", i, got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds Parallel=2", p)
	}
	if p := peak.Load(); p < 2 {
		t.Logf("note: peak concurrency %d (scheduler never overlapped runs)", p)
	}
}

// TestWorktreeRunnerContextCanceled: a canceled context fails fast at
// the semaphore instead of creating a worktree.
func TestWorktreeRunnerContextCanceled(t *testing.T) {
	repo, commits := gitRepo(t, 2, 1)
	scratch := t.TempDir()
	w := &WorktreeRunner{Repo: repo, Scratch: scratch, Parallel: 1, Measure: readValueMeasure}

	release := make(chan struct{})
	w.Measure = func(ctx context.Context, dir, bench string) (float64, error) {
		<-release
		return readValueMeasure(ctx, dir, bench)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(context.Background(), commits[0], "B")
	}()
	// Wait until the slot is held (the worktree dir appears).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ents, _ := os.ReadDir(scratch); len(ents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first run never created its worktree")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Run(ctx, commits[1], "B"); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	close(release)
	<-done
}

// TestWorktreeRunnerBadCommit: an unknown commit surfaces git's error.
func TestWorktreeRunnerBadCommit(t *testing.T) {
	repo, _ := gitRepo(t, 2, 1)
	w := &WorktreeRunner{Repo: repo, Scratch: t.TempDir(), Measure: readValueMeasure}
	if _, err := w.Run(context.Background(), "0000000000000000000000000000000000000000", "B"); err == nil {
		t.Fatal("Run succeeded on a nonexistent commit")
	}
}

// TestWorktreeRunnerGoBenchMeasure exercises the default Measure
// end-to-end: a real `go test -bench` inside the worktree of a tiny
// module committed to a temp repo. Skipped in -short runs (it pays a
// compile).
func TestWorktreeRunnerGoBenchMeasure(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a module; skipped in -short")
	}
	dir := t.TempDir()
	git := func(args ...string) string {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-C", dir,
			"-c", "user.name=t", "-c", "user.email=t@t"}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("git %v: %v: %s", args, err, out)
		}
		return strings.TrimSpace(string(out))
	}
	git("init", "-q", "-b", "main")
	os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpbench\n\ngo 1.22\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "bench_test.go"), []byte(`package tmpbench

import "testing"

func BenchmarkTiny(b *testing.B) {
	s := 0
	for i := 0; i < b.N; i++ {
		s += i
	}
	_ = s
}
`), 0o644)
	git("add", "-A")
	git("commit", "-q", "-m", "bench module")
	commit := git("rev-parse", "HEAD")

	w := &WorktreeRunner{Repo: dir, Scratch: t.TempDir(), BenchTime: "10x"}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := w.Run(ctx, commit, "BenchmarkTiny")
	if err != nil {
		t.Fatalf("goBenchMeasure: %v", err)
	}
	if got <= 0 {
		t.Errorf("measured %v ns/op, want > 0", got)
	}
}
