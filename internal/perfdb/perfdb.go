// Package perfdb is the continuous-perf store behind cmd/dtexlperf
// (DESIGN.md §13): an append-only, per-benchmark time series of every
// bench run keyed by commit, a step-change regression detector over
// those series (internal/stats.DetectSteps), and an automatic bisector
// that re-runs one microbenchmark per commit in git worktrees to
// pinpoint the offending commit. Modeled on skia-buildbot's perf +
// pinpoint split, scaled to this repo: one directory, one JSONL log,
// one process.
//
// The on-disk layout under the database directory is
//
//	log.jsonl  one Point per line, append-only, fsync'd per batch
//	raw/       every ingested artifact byte-for-byte as received
//
// Commit order is first-appearance order in the log: the ingest
// pipeline appends runs in CI order, which is commit order. Nothing is
// ever rewritten, so a torn tail from a crash mid-append loses at most
// the final batch (replay stops at the first unparsable line, exactly
// like sim.Journal).
package perfdb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dtexl/internal/stats"
)

// logFile is the append-only point log under the database directory.
const logFile = "log.jsonl"

// rawDir holds ingested artifacts verbatim.
const rawDir = "raw"

// Point is one measurement of one series at one commit: the unit of
// ingestion and the line format of log.jsonl. Samples holds every
// repeated measurement of the run (e.g. the -count=5 values of one
// benchmark); consumers collapse them with a median.
type Point struct {
	Commit  string    `json:"commit"`
	Series  string    `json:"series"`
	Unit    string    `json:"unit,omitempty"`
	Source  string    `json:"source,omitempty"`
	Samples []float64 `json:"samples"`
}

// SeriesPoint is one commit's entry of an assembled series.
type SeriesPoint struct {
	Commit string `json:"commit"`
	// CommitIndex is the commit's position in the DB's global commit
	// order (first-appearance order).
	CommitIndex int       `json:"commit_index"`
	Median      float64   `json:"median"`
	Samples     []float64 `json:"samples"`
}

// DB is the perf database. All methods are safe for concurrent use.
type DB struct {
	dir string

	mu      sync.Mutex
	log     *os.File
	commits []string
	commitI map[string]int
	// series -> commit -> merged samples (multiple Appends for the
	// same (series, commit) concatenate, like re-runs of one commit).
	series map[string]map[string][]float64
	units  map[string]string
	torn   int // unparsable lines dropped during replay
}

// Open opens (creating if needed) the database under dir and replays
// the valid prefix of its log.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(filepath.Join(dir, rawDir), 0o755); err != nil {
		return nil, fmt.Errorf("perfdb: %w", err)
	}
	db := &DB{
		dir:     dir,
		commitI: make(map[string]int),
		series:  make(map[string]map[string][]float64),
		units:   make(map[string]string),
	}
	path := filepath.Join(dir, logFile)
	if rf, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(rf)
		sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var p Point
			if err := json.Unmarshal(line, &p); err != nil || p.Commit == "" || p.Series == "" {
				// Torn tail from a crash mid-append: the batch is lost,
				// the next ingest of that run recreates it.
				db.torn++
				continue
			}
			db.index(p)
		}
		rf.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("perfdb: replay %s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("perfdb: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("perfdb: %w", err)
	}
	// A torn tail may lack its newline; appending onto it would glue
	// the next good point to the garbage and lose that too. Terminate
	// the line now so the torn bytes stay isolated to one dropped line.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("perfdb: %w", err)
			}
		}
	}
	db.log = f
	return db, nil
}

// index merges one point into the in-memory view (caller holds mu or
// is Open's single-threaded replay).
func (db *DB) index(p Point) {
	if _, ok := db.commitI[p.Commit]; !ok {
		db.commitI[p.Commit] = len(db.commits)
		db.commits = append(db.commits, p.Commit)
	}
	byCommit, ok := db.series[p.Series]
	if !ok {
		byCommit = make(map[string][]float64)
		db.series[p.Series] = byCommit
	}
	byCommit[p.Commit] = append(byCommit[p.Commit], p.Samples...)
	if p.Unit != "" {
		db.units[p.Series] = p.Unit
	}
}

// Append durably appends a batch of points: one JSON line each, then
// one fsync for the batch. Points with an empty commit, series or
// sample set are rejected before anything is written.
func (db *DB) Append(points []Point) error {
	for _, p := range points {
		if p.Commit == "" || p.Series == "" {
			return fmt.Errorf("perfdb: point needs commit and series: %+v", p)
		}
		if len(p.Samples) == 0 {
			return fmt.Errorf("perfdb: point %s@%s has no samples", p.Series, p.Commit)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	w := bufio.NewWriter(db.log)
	enc := json.NewEncoder(w)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			return fmt.Errorf("perfdb: append: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("perfdb: append: %w", err)
	}
	if err := db.log.Sync(); err != nil {
		return fmt.Errorf("perfdb: append: %w", err)
	}
	for _, p := range points {
		db.index(p)
	}
	return nil
}

// Close closes the log file. The DB must not be used afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.log.Close()
}

// Dropped reports unparsable log lines skipped during Open (a torn
// tail from a crash; at most one batch).
func (db *DB) Dropped() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.torn
}

// Commits returns the global commit order (first-appearance order in
// the log).
func (db *DB) Commits() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]string(nil), db.commits...)
}

// SeriesNames returns every series name, sorted.
func (db *DB) SeriesNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.series))
	for name := range db.series {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Unit returns the recorded unit of a series ("" if none).
func (db *DB) Unit(name string) string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.units[name]
}

// Series assembles one series in commit order. Commits with no point
// for this series are absent (the series' own index is dense; the
// global CommitIndex can have holes). Returns nil for an unknown name.
func (db *DB) Series(name string) []SeriesPoint {
	db.mu.Lock()
	defer db.mu.Unlock()
	byCommit, ok := db.series[name]
	if !ok {
		return nil
	}
	out := make([]SeriesPoint, 0, len(byCommit))
	for commit, samples := range byCommit {
		out = append(out, SeriesPoint{
			Commit:      commit,
			CommitIndex: db.commitI[commit],
			Median:      stats.Median(samples),
			Samples:     append([]float64(nil), samples...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CommitIndex < out[j].CommitIndex })
	return out
}

// Change is one detected step in one series, annotated with the commit
// window it maps to: the step lies between LastGood and FirstBad — the
// bisector's input range.
type Change struct {
	Series string     `json:"series"`
	Unit   string     `json:"unit,omitempty"`
	Step   stats.Step `json:"step"`
	// LastGood and FirstBad are the commits on each side of the
	// detected boundary (series-local neighbors).
	LastGood string `json:"last_good"`
	FirstBad string `json:"first_bad"`
	// Regression is true when the series went up — for the time-like
	// units this database holds (ns/op, cycles), up is worse.
	Regression bool `json:"regression"`
}

// Detect runs the step detector over every series and returns all
// changes, regressions and improvements both, ordered by series name
// then index. cfg zero-value selects the calibrated defaults.
func (db *DB) Detect(cfg stats.StepConfig) []Change {
	var out []Change
	for _, name := range db.SeriesNames() {
		pts := db.Series(name)
		xs := make([]float64, len(pts))
		for i, p := range pts {
			xs[i] = p.Median
		}
		for _, step := range stats.DetectSteps(xs, cfg) {
			out = append(out, Change{
				Series:     name,
				Unit:       db.Unit(name),
				Step:       step,
				LastGood:   pts[step.Index-1].Commit,
				FirstBad:   pts[step.Index].Commit,
				Regression: step.Ratio > 1,
			})
		}
	}
	return out
}

// Regressions filters Detect down to regressions (series went up).
func (db *DB) Regressions(cfg stats.StepConfig) []Change {
	all := db.Detect(cfg)
	out := all[:0]
	for _, c := range all {
		if c.Regression {
			out = append(out, c)
		}
	}
	return out
}

// PutRaw stores one ingested artifact verbatim under raw/ and returns
// its id. Artifacts are the byte-identical record of what was
// ingested: the CI perf-ingest job asserts a stored artifact is served
// back unchanged.
func (db *DB) PutRaw(name string, data []byte) (string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ids, err := db.rawIDsLocked()
	if err != nil {
		return "", err
	}
	id := fmt.Sprintf("%04d-%s", len(ids), sanitizeRawName(name))
	path := filepath.Join(db.dir, rawDir, id)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("perfdb: raw: %w", err)
	}
	return id, nil
}

// GetRaw returns a stored artifact's bytes.
func (db *DB) GetRaw(id string) ([]byte, error) {
	if id != sanitizeRawName(id) {
		return nil, fmt.Errorf("perfdb: invalid raw id %q", id)
	}
	return os.ReadFile(filepath.Join(db.dir, rawDir, id))
}

// RawIDs lists stored artifacts in id order.
func (db *DB) RawIDs() ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.rawIDsLocked()
}

func (db *DB) rawIDsLocked() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(db.dir, rawDir))
	if err != nil {
		return nil, fmt.Errorf("perfdb: raw: %w", err)
	}
	ids := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// sanitizeRawName maps an artifact name onto a safe flat filename:
// path separators and control characters become '_'.
func sanitizeRawName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	s := b.String()
	if s == "" || strings.Trim(s, ".") == "" {
		s = "artifact"
	}
	return s
}
