package perfdb

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the ingest boundary: parsers that turn the three bench
// artifact formats the repo produces — `go test -bench` text, the
// benchguard -json report, and golden-metrics JSON (a marshaled
// pipeline.Metrics) — into Points. Every parser is pure; DB.Ingest
// wires them to the store and keeps the raw artifact byte-for-byte.

// Report is the machine-readable output of `benchguard -json`: the
// exact shape is locked by cmd/benchguard's golden-file test, and
// ParseBenchguardJSON ingests it. cmd/benchguard builds this struct;
// keeping the type here makes the writer and the reader one definition.
type Report struct {
	Old        string            `json:"old"`
	New        string            `json:"new"`
	Threshold  float64           `json:"threshold"`
	Benchmarks []BenchmarkReport `json:"benchmarks"`
	// GeomeanRatio is the geometric mean of the per-benchmark
	// new/old median ratios — benchguard's pass/fail statistic.
	GeomeanRatio float64 `json:"geomean_ratio"`
	Pass         bool    `json:"pass"`
}

// BenchmarkReport is one benchmark row of a Report. The medians are
// what the gate compares; the raw samples ride along so ingesting a
// report loses nothing against ingesting the bench text itself.
type BenchmarkReport struct {
	Name       string    `json:"name"`
	OldNsPerOp float64   `json:"old_ns_per_op"` // median of OldSamples
	NewNsPerOp float64   `json:"new_ns_per_op"` // median of NewSamples
	Ratio      float64   `json:"ratio"`         // new/old medians
	OldSamples []float64 `json:"old_samples_ns"`
	NewSamples []float64 `json:"new_samples_ns"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// ParseGoBenchSamples reads `go test -bench` output into benchmark
// name -> ns/op samples (one per -count repetition). The trailing -N
// GOMAXPROCS suffix is stripped so series survive runner core-count
// changes. Shared with cmd/benchguard.
func ParseGoBenchSamples(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil || v <= 0 {
			continue
		}
		out[m[1]] = append(out[m[1]], v)
	}
	return out, sc.Err()
}

// ParseGoBench turns `go test -bench` output into Points at a commit,
// one series per benchmark, sorted by name.
func ParseGoBench(r io.Reader, commit string) ([]Point, error) {
	samples, err := ParseGoBenchSamples(r)
	if err != nil {
		return nil, fmt.Errorf("perfdb: gobench: %w", err)
	}
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	points := make([]Point, 0, len(names))
	for _, name := range names {
		points = append(points, Point{
			Commit:  commit,
			Series:  name,
			Unit:    "ns/op",
			Source:  "gobench",
			Samples: samples[name],
		})
	}
	return points, nil
}

// ParseBenchguardJSON turns a benchguard -json report into Points at a
// commit: each benchmark's *new* samples (the candidate side — the old
// side is the already-ingested baseline), plus a synthetic
// "benchguard.geomean_ratio" series tracking the gate statistic itself.
func ParseBenchguardJSON(data []byte, commit string) ([]Point, error) {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("perfdb: benchguard report: %w", err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("perfdb: benchguard report has no benchmarks")
	}
	var points []Point
	for _, b := range rep.Benchmarks {
		samples := b.NewSamples
		if len(samples) == 0 && b.NewNsPerOp > 0 {
			samples = []float64{b.NewNsPerOp}
		}
		if b.Name == "" || len(samples) == 0 {
			return nil, fmt.Errorf("perfdb: benchguard report row %+v lacks name or samples", b)
		}
		points = append(points, Point{
			Commit:  commit,
			Series:  b.Name,
			Unit:    "ns/op",
			Source:  "benchguard",
			Samples: samples,
		})
	}
	points = append(points, Point{
		Commit:  commit,
		Series:  "benchguard.geomean_ratio",
		Unit:    "ratio",
		Source:  "benchguard",
		Samples: []float64{rep.GeomeanRatio},
	})
	return points, nil
}

// ParseGoldenMetrics flattens a golden-metrics JSON document (a
// marshaled pipeline.Metrics) into Points at a commit: every numeric
// leaf becomes a series named by its dotted path under prefix, with
// booleans as 0/1 and array elements aggregated into their path's
// sample set (PerSCBusy -> one series whose samples are the per-SC
// values; Intervals.L2.Accesses -> one series sampled across
// intervals). The walk is generic over the JSON — not a hand-kept
// field list — so a field added to Metrics is ingested the moment it
// marshals; TestGoldenMetricsRoundTrip holds the ingester to that.
func ParseGoldenMetrics(data []byte, commit, prefix string) ([]Point, error) {
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("perfdb: golden metrics: %w", err)
	}
	samples := make(map[string][]float64)
	flattenJSON(doc, prefix, samples)
	if len(samples) == 0 {
		return nil, fmt.Errorf("perfdb: golden metrics: no numeric leaves under %q", prefix)
	}
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	points := make([]Point, 0, len(names))
	for _, name := range names {
		points = append(points, Point{
			Commit:  commit,
			Series:  name,
			Source:  "metrics",
			Samples: samples[name],
		})
	}
	return points, nil
}

// flattenJSON accumulates every numeric leaf of v under its dotted
// path. Strings and nulls carry no chartable value and are skipped;
// array elements share their array's path.
func flattenJSON(v any, path string, out map[string][]float64) {
	switch t := v.(type) {
	case float64:
		out[path] = append(out[path], t)
	case bool:
		x := 0.0
		if t {
			x = 1
		}
		out[path] = append(out[path], x)
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flattenJSON(t[k], path+"."+k, out)
		}
	case []any:
		for _, e := range t {
			flattenJSON(e, path, out)
		}
	}
}

// Ingest formats.
const (
	FormatAuto       = "auto"
	FormatGoBench    = "gobench"
	FormatBenchguard = "benchguard"
	FormatMetrics    = "metrics"
)

// DetectFormat guesses an artifact's format from its content: a JSON
// object with benchguard's report keys, a JSON object (assumed golden
// metrics), or text containing ns/op lines.
func DetectFormat(data []byte) string {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var probe struct {
			Benchmarks   []json.RawMessage `json:"benchmarks"`
			GeomeanRatio *float64          `json:"geomean_ratio"`
		}
		if err := json.Unmarshal(trimmed, &probe); err == nil &&
			probe.GeomeanRatio != nil && len(probe.Benchmarks) > 0 {
			return FormatBenchguard
		}
		return FormatMetrics
	}
	if benchLine.MatchReader(bytes.NewReader(trimmed)) || bytes.Contains(trimmed, []byte(" ns/op")) {
		return FormatGoBench
	}
	return ""
}

// Ingest parses one artifact (FormatAuto sniffs), stores it verbatim
// under raw/, and appends its points at the given commit. name labels
// the raw artifact and, for metrics documents, derives the series
// prefix ("metrics.<basename without extension>"). Returns the raw id
// and the number of points appended.
func (db *DB) Ingest(format, commit, name string, data []byte) (rawID string, n int, err error) {
	if commit == "" {
		return "", 0, fmt.Errorf("perfdb: ingest needs a commit")
	}
	if format == "" || format == FormatAuto {
		format = DetectFormat(data)
	}
	var points []Point
	switch format {
	case FormatGoBench:
		points, err = ParseGoBench(bytes.NewReader(data), commit)
	case FormatBenchguard:
		points, err = ParseBenchguardJSON(data, commit)
	case FormatMetrics:
		base := strings.TrimSuffix(filepath.Base(name), filepath.Ext(name))
		if base == "" || base == "." {
			base = "metrics"
		}
		points, err = ParseGoldenMetrics(data, commit, "metrics."+base)
	default:
		return "", 0, fmt.Errorf("perfdb: cannot determine format of %q (pass -format)", name)
	}
	if err != nil {
		return "", 0, err
	}
	if len(points) == 0 {
		return "", 0, fmt.Errorf("perfdb: %q parsed to no points", name)
	}
	rawID, err = db.PutRaw(name, data)
	if err != nil {
		return "", 0, err
	}
	if err := db.Append(points); err != nil {
		return "", 0, err
	}
	return rawID, len(points), nil
}
