package perfdb

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// makeCommits builds n synthetic commit names.
func makeCommits(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("c%03d", i)
	}
	return out
}

// scriptedRunner measures good=100 before the culprit index and
// bad=125 from it on, with deterministic noise of the given relative
// amplitude. failures[commit] counts how many times that commit's
// measurement errors before succeeding (flaky-runner script).
type scriptedRunner struct {
	commits  []string
	culprit  int
	noise    float64
	failures map[string]int
	rng      *rand.Rand
	calls    int
}

func (s *scriptedRunner) run(_ context.Context, commit, _ string) (float64, error) {
	s.calls++
	if left := s.failures[commit]; left > 0 {
		s.failures[commit] = left - 1
		return 0, fmt.Errorf("scripted failure at %s", commit)
	}
	idx := -1
	for i, c := range s.commits {
		if c == commit {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("unknown commit %s", commit)
	}
	level := 100.0
	if idx >= s.culprit {
		level = 125.0
	}
	if s.noise > 0 {
		level *= 1 + s.noise*(2*s.rng.Float64()-1)
	}
	return level, nil
}

func newScripted(n, culprit int, noise float64, seed int64) *scriptedRunner {
	return &scriptedRunner{
		commits:  makeCommits(n),
		culprit:  culprit,
		noise:    noise,
		failures: map[string]int{},
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// TestBisectConvergesClean: noiseless measurements converge to the
// injected culprit for every culprit position, within the log2 probe
// budget.
func TestBisectConvergesClean(t *testing.T) {
	for _, n := range []int{2, 3, 10, 33, 128} {
		for _, culprit := range []int{1, n / 2, n - 1} {
			if culprit < 1 {
				continue
			}
			s := newScripted(n, culprit, 0, 1)
			b := Bisector{Run: s.run, RunsPerCommit: 1}
			res, err := b.Bisect(context.Background(), s.commits, "BenchmarkX", 100, 125)
			if err != nil {
				t.Fatalf("n=%d culprit=%d: %v", n, culprit, err)
			}
			if res.Culprit != s.commits[culprit] {
				t.Errorf("n=%d: culprit = %s, want %s", n, res.Culprit, s.commits[culprit])
			}
			if res.LastGood != s.commits[culprit-1] {
				t.Errorf("n=%d: last good = %s, want %s", n, res.LastGood, s.commits[culprit-1])
			}
			// Binary search probes at most ceil(log2(n)) interior commits.
			if len(res.Probes) > 8 {
				t.Errorf("n=%d: %d probes for a binary search", n, len(res.Probes))
			}
		}
	}
}

// TestBisectConvergesNoisy: measurement noise up to ±8% of the level —
// a third of the 25% step — must not mislead the nearest-level
// classifier across many seeds and culprit positions.
func TestBisectConvergesNoisy(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		culprit := 1 + int(seed)%30
		s := newScripted(31, culprit, 0.08, seed)
		b := Bisector{Run: s.run, RunsPerCommit: 3}
		res, err := b.Bisect(context.Background(), s.commits, "BenchmarkX", 100, 125)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Culprit != s.commits[culprit] {
			t.Errorf("seed %d: culprit = %s, want %s", seed, res.Culprit, s.commits[culprit])
		}
		if res.Measurements != s.calls {
			t.Errorf("seed %d: Measurements = %d, runner saw %d", seed, res.Measurements, s.calls)
		}
	}
}

// TestBisectFlakyRunner: each probed commit errors twice before
// succeeding; the default retry budget (2) absorbs exactly that, and
// the probe still classifies on the successful runs.
func TestBisectFlakyRunner(t *testing.T) {
	s := newScripted(16, 5, 0, 1)
	for _, c := range s.commits {
		s.failures[c] = 2
	}
	b := Bisector{Run: s.run, RunsPerCommit: 1}
	res, err := b.Bisect(context.Background(), s.commits, "BenchmarkX", 100, 125)
	if err != nil {
		t.Fatalf("flaky bisect: %v", err)
	}
	if res.Culprit != s.commits[5] {
		t.Errorf("culprit = %s, want %s", res.Culprit, s.commits[5])
	}
	// Each probe consumed its 2 failures + 1 success.
	for _, p := range res.Probes {
		if p.Runs != 3 {
			t.Errorf("probe %s consumed %d runs, want 3 (2 failures + 1 success)", p.Commit, p.Runs)
		}
	}
}

// TestBisectRetryBudgetExhausted: one commit fails more times than the
// retry budget allows; the bisection reports the failure rather than
// guessing, and the partial probe trail is preserved.
func TestBisectRetryBudgetExhausted(t *testing.T) {
	s := newScripted(16, 5, 0, 1)
	mid := s.commits[(0+15)/2] // first probe of the search
	s.failures[mid] = 100
	b := Bisector{Run: s.run, RunsPerCommit: 1}
	res, err := b.Bisect(context.Background(), s.commits, "BenchmarkX", 100, 125)
	if err == nil {
		t.Fatal("bisect succeeded despite a permanently failing commit")
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Errorf("error %q does not name the retry budget", err)
	}
	if res == nil || res.Culprit != "" {
		t.Errorf("failed bisection must not name a culprit: %+v", res)
	}
	// Default Retries=2: 3 runs were spent on the failing commit.
	if res.Measurements != 3 {
		t.Errorf("Measurements = %d, want 3", res.Measurements)
	}
}

// TestBisectMeasurementBudget: a budget too small for the range fails
// with a budget error instead of looping.
func TestBisectMeasurementBudget(t *testing.T) {
	s := newScripted(128, 64, 0, 1)
	b := Bisector{Run: s.run, RunsPerCommit: 3, Budget: 5}
	_, err := b.Bisect(context.Background(), s.commits, "BenchmarkX", 100, 125)
	if err == nil {
		t.Fatal("bisect succeeded with a 5-run budget over 128 commits")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("error %q does not name the budget", err)
	}
	if s.calls > 5 {
		t.Errorf("runner saw %d calls, budget was 5", s.calls)
	}
}

func TestBisectValidation(t *testing.T) {
	s := newScripted(4, 2, 0, 1)
	ctx := context.Background()
	if _, err := (&Bisector{}).Bisect(ctx, s.commits, "B", 100, 125); err == nil {
		t.Error("nil RunFunc accepted")
	}
	b := Bisector{Run: s.run}
	if _, err := b.Bisect(ctx, s.commits[:1], "B", 100, 125); err == nil {
		t.Error("single-commit range accepted")
	}
	if _, err := b.Bisect(ctx, s.commits, "B", 100, 100); err == nil {
		t.Error("equal good/bad levels accepted")
	}
}

// TestBisectContextCanceled: cancellation mid-search surfaces promptly
// as the context error.
func TestBisectContextCanceled(t *testing.T) {
	s := newScripted(64, 30, 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	run := func(c context.Context, commit, bench string) (float64, error) {
		calls++
		if calls == 2 {
			cancel()
		}
		return s.run(c, commit, bench)
	}
	b := Bisector{Run: run, RunsPerCommit: 5}
	_, err := b.Bisect(ctx, s.commits, "B", 100, 125)
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if calls > 2 {
		t.Errorf("runner called %d times after cancellation", calls)
	}
}

// TestBisectImprovementDirection: the bisector is direction-agnostic —
// it narrows to the first commit at the *bad* level even when bad is
// numerically lower (bisecting an unexplained improvement).
func TestBisectImprovementDirection(t *testing.T) {
	commits := makeCommits(20)
	run := func(_ context.Context, commit, _ string) (float64, error) {
		var idx int
		fmt.Sscanf(commit, "c%d", &idx)
		if idx >= 7 {
			return 80, nil
		}
		return 100, nil
	}
	b := Bisector{Run: run, RunsPerCommit: 1}
	res, err := b.Bisect(context.Background(), commits, "B", 100, 80)
	if err != nil {
		t.Fatal(err)
	}
	if res.Culprit != "c007" {
		t.Errorf("culprit = %s, want c007", res.Culprit)
	}
}
