package perfdb

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer seeds a DB with a 40-commit BenchmarkHot series
// stepping 100 -> 130 at commit 20 and returns the running test
// server. The raw artifact of the first ingest is returned for
// round-trip checks.
func newTestServer(t *testing.T, cfg ServerConfig) (*httptest.Server, *DB, string, []byte) {
	t.Helper()
	db, _ := openTestDB(t)
	var firstRaw string
	var firstData []byte
	for i := 0; i < 40; i++ {
		v := 100.0
		if i >= 20 {
			v = 130
		}
		v += float64(i%3) * 0.2
		text := fmt.Sprintf("BenchmarkHot-8  100  %g ns/op\n", v)
		id, _, err := db.Ingest(FormatAuto, fmt.Sprintf("c%02d", i), "bench.txt", []byte(text))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstRaw, firstData = id, []byte(text)
		}
	}
	cfg.DB = db
	ts := httptest.NewServer(NewServer(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, db, firstRaw, firstData
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestServerSeriesAPI(t *testing.T) {
	ts, _, _, _ := newTestServer(t, ServerConfig{})

	var infos []SeriesInfo
	if code := getJSON(t, ts.URL+"/api/series", &infos); code != 200 {
		t.Fatalf("series index: %d", code)
	}
	if len(infos) != 1 || infos[0].Name != "BenchmarkHot" || infos[0].Points != 40 || infos[0].Unit != "ns/op" {
		t.Errorf("series index = %+v", infos)
	}

	var sr SeriesResponse
	if code := getJSON(t, ts.URL+"/api/series?name=BenchmarkHot", &sr); code != 200 {
		t.Fatalf("series get: %d", code)
	}
	if len(sr.Points) != 40 || sr.Points[0].Commit != "c00" || sr.Points[39].Median < 130 {
		t.Errorf("series response = %d points, first %+v", len(sr.Points), sr.Points[0])
	}

	if code := getJSON(t, ts.URL+"/api/series?name=Nope", nil); code != 404 {
		t.Errorf("unknown series: %d, want 404", code)
	}

	var commits []string
	getJSON(t, ts.URL+"/api/commits", &commits)
	if len(commits) != 40 || commits[0] != "c00" {
		t.Errorf("commits = %d, first %q", len(commits), commits[0])
	}
}

func TestServerRegressionsAPI(t *testing.T) {
	ts, _, _, _ := newTestServer(t, ServerConfig{})
	var changes []Change
	if code := getJSON(t, ts.URL+"/api/regressions", &changes); code != 200 {
		t.Fatalf("regressions: %d", code)
	}
	if len(changes) != 1 {
		t.Fatalf("regressions = %+v, want exactly the injected step", changes)
	}
	c := changes[0]
	if c.Series != "BenchmarkHot" || !c.Regression {
		t.Errorf("change = %+v", c)
	}
	var fbi int
	fmt.Sscanf(c.FirstBad, "c%d", &fbi)
	if fbi < 18 || fbi > 22 {
		t.Errorf("step localized to %s, want near c20", c.FirstBad)
	}

	// Absurdly high K: still 200 with an empty (not null) array.
	resp, err := http.Get(ts.URL + "/api/regressions?k=10000&minrel=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("no-regressions body = %q, want []", body)
	}

	if code := getJSON(t, ts.URL+"/api/regressions?window=banana", nil); code != 400 {
		t.Errorf("bad window param: %d, want 400", code)
	}
}

// TestServerRawByteIdentical is the contract the CI perf-ingest job
// leans on: what was ingested is served back byte-for-byte.
func TestServerRawByteIdentical(t *testing.T) {
	ts, _, rawID, want := newTestServer(t, ServerConfig{})

	var ids []string
	getJSON(t, ts.URL+"/api/raw", &ids)
	if len(ids) != 40 {
		t.Fatalf("raw ids = %d, want 40", len(ids))
	}
	resp, err := http.Get(ts.URL + "/api/raw/" + rawID)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got, want) {
		t.Errorf("raw artifact not byte-identical:\ngot  %q\nwant %q", got, want)
	}

	if code := getJSON(t, ts.URL+"/api/raw/no-such-artifact", nil); code != 404 {
		t.Errorf("missing artifact: %d, want 404", code)
	}
}

func TestServerIngestAPI(t *testing.T) {
	ts, db, _, _ := newTestServer(t, ServerConfig{})
	body := "BenchmarkNew-8  10  42 ns/op\n"
	resp, err := http.Post(ts.URL+"/api/ingest?commit=c99&name=push.txt", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ir IngestResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != 200 || ir.Points != 1 || ir.RawID == "" {
		t.Fatalf("ingest: %d, %+v", resp.StatusCode, ir)
	}
	if pts := db.Series("BenchmarkNew"); len(pts) != 1 || pts[0].Median != 42 {
		t.Errorf("ingested series = %+v", pts)
	}
	got, err := db.GetRaw(ir.RawID)
	if err != nil || string(got) != body {
		t.Errorf("pushed artifact not stored verbatim: %v %q", err, got)
	}

	// Missing commit and unparsable payloads are 400s.
	resp, _ = http.Post(ts.URL+"/api/ingest", "text/plain", strings.NewReader(body))
	if resp.StatusCode != 400 {
		t.Errorf("ingest without commit: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/api/ingest?commit=c99", "text/plain", strings.NewReader("gibberish"))
	if resp.StatusCode != 400 {
		t.Errorf("ingest gibberish: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServerBisectAPI drives POST /api/bisect with a scripted RunFunc
// against the seeded series: explicit commit range, levels derived
// from the ingested series at the endpoints.
func TestServerBisectAPI(t *testing.T) {
	culprit := 20
	run := func(_ context.Context, commit, bench string) (float64, error) {
		if bench != "BenchmarkHot" {
			return 0, fmt.Errorf("unexpected benchmark %q", bench)
		}
		var idx int
		fmt.Sscanf(commit, "c%d", &idx)
		if idx >= culprit {
			return 130, nil
		}
		return 100, nil
	}
	ts, _, _, _ := newTestServer(t, ServerConfig{Bisect: run})

	// Range wider than the true step, endpoints good/bad; levels come
	// from the series (Good/Bad omitted).
	var commits []string
	for i := 14; i <= 26; i++ {
		commits = append(commits, fmt.Sprintf("c%02d", i))
	}
	reqBody, _ := json.Marshal(BisectRequest{Benchmark: "BenchmarkHot", Commits: commits})
	resp, err := http.Post(ts.URL+"/api/bisect", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	var res BisectResult
	json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("bisect: %d, %+v", resp.StatusCode, res)
	}
	if res.Culprit != "c20" || res.LastGood != "c19" {
		t.Errorf("bisect result = %+v, want culprit c20", res)
	}
	if len(res.Probes) == 0 || res.Measurements == 0 {
		t.Errorf("probe trail missing: %+v", res)
	}

	// Validation corners.
	for _, body := range []string{
		`{"commits": ["c14","c26"]}`,                      // no benchmark
		`{"benchmark": "BenchmarkHot"}`,                   // no range, no endpoints
		`not json`,                                        // bad body
		`{"benchmark": "Nope", "commits": ["c14","c26"]}`, // levels unavailable
	} {
		resp, _ := http.Post(ts.URL+"/api/bisect", "application/json", strings.NewReader(body))
		if resp.StatusCode != 400 {
			t.Errorf("body %q: %d, want 400", body, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestServerBisectUnconfigured: without a RunFunc the endpoint is 501,
// telling the operator how to enable it.
func TestServerBisectUnconfigured(t *testing.T) {
	ts, _, _, _ := newTestServer(t, ServerConfig{})
	resp, err := http.Post(ts.URL+"/api/bisect", "application/json",
		strings.NewReader(`{"benchmark": "BenchmarkHot", "commits": ["c00","c39"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("unconfigured bisect: %d, want 501", resp.StatusCode)
	}
}

func TestServerDashboardAndHealth(t *testing.T) {
	ts, _, _, _ := newTestServer(t, ServerConfig{})
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "dtexlperf") {
		t.Errorf("dashboard: %d, %d bytes", resp.StatusCode, len(body))
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Errorf("healthz: %d", code)
	}
	// Unknown API paths 404 rather than falling through to the page.
	if code := getJSON(t, ts.URL+"/api/nope", nil); code != 404 {
		t.Errorf("unknown api path: %d", code)
	}
}

// TestRevListRange exercises the git-range expansion against a real
// repository (shared with the worktree tests' fixture builder).
func TestRevListRange(t *testing.T) {
	repo, commits := gitRepo(t, 6, 3)
	got, err := RevListRange(context.Background(), repo, commits[1], commits[4])
	if err != nil {
		t.Fatal(err)
	}
	want := commits[1:5]
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("range[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, err := RevListRange(context.Background(), repo, commits[4], commits[4]); err == nil {
		t.Error("empty range accepted")
	}
}

// TestSeriesLevels: endpoint medians come from the DB; absent points
// are an error, not zeros (zeros would wreck classification).
func TestSeriesLevels(t *testing.T) {
	db, _ := openTestDB(t)
	db.Append([]Point{
		{Commit: "a", Series: "B", Samples: []float64{100}},
		{Commit: "b", Series: "B", Samples: []float64{125}},
	})
	good, bad, err := SeriesLevels(db, "B", []string{"a", "x", "b"})
	if err != nil || good != 100 || bad != 125 {
		t.Errorf("levels = %v/%v, %v", good, bad, err)
	}
	if _, _, err := SeriesLevels(db, "B", []string{"missing", "b"}); err == nil {
		t.Error("missing endpoint accepted")
	}
	if _, _, err := SeriesLevels(db, "Nope", []string{"a", "b"}); err == nil {
		t.Error("unknown series accepted")
	}
}
