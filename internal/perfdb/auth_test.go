package perfdb

import (
	"net/http"
	"strings"
	"testing"
)

// TestAuthGatesWrites: with AuthToken set, POST /api/ingest and
// POST /api/bisect demand the bearer token while every read — the
// dashboard, series, regressions, raw artifacts, health — stays open.
func TestAuthGatesWrites(t *testing.T) {
	const token = "perf-secret"
	ts, _, firstRaw, _ := newTestServer(t, ServerConfig{AuthToken: token, Logf: t.Logf})

	for _, path := range []string{"/", "/healthz", "/api/commits", "/api/series", "/api/regressions", "/api/raw", "/api/raw/" + firstRaw} {
		if got := getJSON(t, ts.URL+path, nil); got != http.StatusOK {
			t.Errorf("GET %s with auth on = %d, want 200 (reads stay open)", path, got)
		}
	}

	body := "BenchmarkHot-8  100  99 ns/op\n"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/ingest?commit=c99&name=bench.txt", strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated ingest = %d, want 401", resp.StatusCode)
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/api/ingest?commit=c99&name=bench.txt", strings.NewReader(body))
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token ingest = %d, want 401", resp.StatusCode)
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/api/ingest?commit=c99&name=bench.txt", strings.NewReader(body))
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tokened ingest = %d, want 200", resp.StatusCode)
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/api/bisect", strings.NewReader(`{}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated bisect = %d, want 401", resp.StatusCode)
	}
}
