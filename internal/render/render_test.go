package render

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestColorChannels(t *testing.T) {
	c := RGBA(1, 2, 3, 4)
	if c.R() != 1 || c.G() != 2 || c.B() != 3 || c.A() != 4 {
		t.Errorf("channels = %d %d %d %d", c.R(), c.G(), c.B(), c.A())
	}
}

func TestColorRoundTrip(t *testing.T) {
	f := func(r, g, b, a uint8) bool {
		c := RGBA(r, g, b, a)
		return c.R() == r && c.G() == g && c.B() == b && c.A() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := RGBA(0, 0, 0, 0)
	b := RGBA(255, 255, 255, 255)
	if a.Lerp(b, 0) != a {
		t.Error("Lerp(0) != a")
	}
	if a.Lerp(b, 1) != b {
		t.Error("Lerp(1) != b")
	}
	mid := a.Lerp(b, 0.5)
	if mid.R() < 126 || mid.R() > 129 {
		t.Errorf("midpoint R = %d", mid.R())
	}
}

func TestOver(t *testing.T) {
	src := RGBA(200, 100, 0, 255)
	dst := RGBA(0, 100, 200, 255)
	// Fully opaque: src wins (alpha forced to 0xff).
	if got := Over(src, dst, 1); got.R() != 200 || got.B() != 0 {
		t.Errorf("opaque over = %v", got)
	}
	// Fully transparent: dst survives.
	if got := Over(src, dst, 0); got.R() != 0 || got.B() != 200 {
		t.Errorf("transparent over = %v", got)
	}
	half := Over(src, dst, 0.5)
	if half.R() < 99 || half.R() > 101 {
		t.Errorf("half over R = %d", half.R())
	}
}

func TestFramebufferSetAt(t *testing.T) {
	f := NewFramebuffer(4, 3)
	c := RGBA(9, 8, 7, 6)
	f.Set(2, 1, c)
	if f.At(2, 1) != c {
		t.Error("Set/At roundtrip failed")
	}
	// Out-of-bounds access is safe and inert.
	f.Set(-1, 0, c)
	f.Set(4, 0, c)
	f.Set(0, 3, c)
	if f.At(-1, 0) != 0 || f.At(4, 0) != 0 {
		t.Error("out-of-bounds At != 0")
	}
}

func TestFramebufferClearEqualHash(t *testing.T) {
	a := NewFramebuffer(8, 8)
	b := NewFramebuffer(8, 8)
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Error("fresh framebuffers differ")
	}
	a.Set(3, 3, RGBA(1, 1, 1, 1))
	if a.Equal(b) || a.Hash() == b.Hash() {
		t.Error("modified framebuffer compares equal")
	}
	a.Clear(0)
	if !a.Equal(b) {
		t.Error("cleared framebuffer differs")
	}
	c := NewFramebuffer(8, 4)
	if a.Equal(c) {
		t.Error("different sizes compare equal")
	}
}

func TestNewFramebufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 0x0 framebuffer")
		}
	}()
	NewFramebuffer(0, 0)
}

func TestWritePPM(t *testing.T) {
	f := NewFramebuffer(2, 2)
	f.Set(0, 0, RGBA(255, 0, 0, 255))
	f.Set(1, 1, RGBA(0, 0, 255, 255))
	var buf bytes.Buffer
	if err := f.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !strings.HasPrefix(string(out), "P6\n2 2\n255\n") {
		t.Fatalf("bad header: %q", out[:12])
	}
	pix := out[len("P6\n2 2\n255\n"):]
	if len(pix) != 12 {
		t.Fatalf("payload = %d bytes", len(pix))
	}
	if pix[0] != 255 || pix[1] != 0 || pix[2] != 0 {
		t.Errorf("pixel (0,0) = %v", pix[:3])
	}
	if pix[9] != 0 || pix[11] != 255 {
		t.Errorf("pixel (1,1) = %v", pix[9:12])
	}
}
