// Package render provides the color side of the pipeline: an RGBA8
// framebuffer the Blending stage resolves into, and a PPM writer for
// inspecting rendered frames. Rendering is optional in the simulator —
// timing and traffic never depend on it — but it pins down the pipeline's
// correctness: whatever the scheduler, tile order or barrier
// architecture, the resolved image must be identical (§III-C: quad
// reordering across tiles never violates pipeline correctness).
package render

import (
	"fmt"
	"io"
)

// Color is an RGBA8 color packed as 0xRRGGBBAA.
type Color uint32

// RGBA builds a packed color.
func RGBA(r, g, b, a uint8) Color {
	return Color(uint32(r)<<24 | uint32(g)<<16 | uint32(b)<<8 | uint32(a))
}

// R returns the red channel.
func (c Color) R() uint8 { return uint8(c >> 24) }

// G returns the green channel.
func (c Color) G() uint8 { return uint8(c >> 16) }

// B returns the blue channel.
func (c Color) B() uint8 { return uint8(c >> 8) }

// A returns the alpha channel.
func (c Color) A() uint8 { return uint8(c) }

// Lerp blends c toward d by t in [0,1] per channel.
func (c Color) Lerp(d Color, t float64) Color {
	mix := func(a, b uint8) uint8 {
		return uint8(float64(a) + (float64(b)-float64(a))*t + 0.5)
	}
	return RGBA(mix(c.R(), d.R()), mix(c.G(), d.G()), mix(c.B(), d.B()), mix(c.A(), d.A()))
}

// Over composites src over dst with the given source opacity (classic
// alpha blending as performed by the Blending unit).
func Over(src, dst Color, alpha float64) Color {
	blend := func(s, d uint8) uint8 {
		return uint8(float64(s)*alpha + float64(d)*(1-alpha) + 0.5)
	}
	return RGBA(blend(src.R(), dst.R()), blend(src.G(), dst.G()), blend(src.B(), dst.B()), 0xff)
}

// Framebuffer is the full-frame color target the per-tile Color Buffers
// are flushed into.
type Framebuffer struct {
	W, H int
	pix  []Color
}

// NewFramebuffer allocates a cleared framebuffer.
func NewFramebuffer(w, h int) *Framebuffer {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("render: invalid framebuffer %dx%d", w, h))
	}
	return &Framebuffer{W: w, H: h, pix: make([]Color, w*h)}
}

// Set writes the pixel at (x, y); out-of-bounds writes are dropped, as
// clipped fragments never reach the Color Buffer.
func (f *Framebuffer) Set(x, y int, c Color) {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return
	}
	f.pix[y*f.W+x] = c
}

// At reads the pixel at (x, y); out-of-bounds reads return zero.
func (f *Framebuffer) At(x, y int) Color {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return 0
	}
	return f.pix[y*f.W+x]
}

// Clear fills the framebuffer with c.
func (f *Framebuffer) Clear(c Color) {
	for i := range f.pix {
		f.pix[i] = c
	}
}

// Equal reports whether two framebuffers hold identical images.
func (f *Framebuffer) Equal(o *Framebuffer) bool {
	if f.W != o.W || f.H != o.H {
		return false
	}
	for i := range f.pix {
		if f.pix[i] != o.pix[i] {
			return false
		}
	}
	return true
}

// Hash returns an FNV-1a digest of the image, for cheap identity checks
// across many configurations.
func (f *Framebuffer) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, p := range f.pix {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(uint8(p >> shift))
			h *= 1099511628211
		}
	}
	return h
}

// WritePPM encodes the image as a binary PPM (P6), dropping alpha.
func (f *Framebuffer) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", f.W, f.H); err != nil {
		return err
	}
	row := make([]byte, f.W*3)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			c := f.pix[y*f.W+x]
			row[x*3] = c.R()
			row[x*3+1] = c.G()
			row[x*3+2] = c.B()
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}
