package dtexl

import (
	"io"
	"os"
	"testing"
)

const (
	testW = 256
	testH = 128
)

func TestRunDefaults(t *testing.T) {
	res, err := Run(Config{Benchmark: "TRu", Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "baseline" {
		t.Errorf("default policy = %s", res.Policy)
	}
	if res.FPS <= 0 || res.Cycles <= 0 || res.L2Accesses == 0 {
		t.Errorf("bad result: %+v", res)
	}
	if res.L1TexHitRate <= 0 || res.L1TexHitRate >= 1 {
		t.Errorf("hit rate = %v", res.L1TexHitRate)
	}
	if res.EnergyJoules <= 0 {
		t.Errorf("energy = %v", res.EnergyJoules)
	}
	if res.FragmentsShaded == 0 || res.FragmentsShaded > 4*res.QuadsShaded {
		t.Errorf("fragments = %d for %d quads", res.FragmentsShaded, res.QuadsShaded)
	}
	// Helper lanes exist: fragment count must be strictly below 4x quads.
	if res.FragmentsShaded == 4*res.QuadsShaded {
		t.Error("no partially covered quads — edge masking is not working")
	}
	var sum float64
	for _, v := range res.Energy {
		sum += v
	}
	if sum*1e-9 < res.EnergyJoules*0.999 || sum*1e-9 > res.EnergyJoules*1.001 {
		t.Errorf("energy components (%v nJ) do not sum to total (%v J)", sum, res.EnergyJoules)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Benchmark: "nope", Width: testW, Height: testH}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Run(Config{Benchmark: "TRu", Policy: "nope", Width: testW, Height: testH}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestDTexLBeatsBaseline(t *testing.T) {
	base, err := Run(Config{Benchmark: "GTr", Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	dtexl, err := Run(Config{Benchmark: "GTr", Policy: "DTexL", Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	if dtexl.FPS <= base.FPS {
		t.Errorf("DTexL FPS (%v) not above baseline (%v)", dtexl.FPS, base.FPS)
	}
	if dtexl.L2Accesses >= base.L2Accesses {
		t.Errorf("DTexL L2 (%d) not below baseline (%d)", dtexl.L2Accesses, base.L2Accesses)
	}
	if dtexl.EnergyJoules >= base.EnergyJoules {
		t.Errorf("DTexL energy (%v) not below baseline (%v)", dtexl.EnergyJoules, base.EnergyJoules)
	}
}

func TestUpperBoundRun(t *testing.T) {
	ub, err := Run(Config{Benchmark: "SWa", UpperBound: true, Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Config{Benchmark: "SWa", Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	if ub.L2Accesses >= base.L2Accesses {
		t.Errorf("upper bound L2 (%d) not below baseline (%d)", ub.L2Accesses, base.L2Accesses)
	}
}

func TestBenchmarksTable(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 10 {
		t.Fatalf("%d benchmarks", len(bs))
	}
	if bs[0].Alias != "CCS" || bs[0].InstallsMillions != 1000 {
		t.Errorf("first row = %+v", bs[0])
	}
}

func TestPoliciesListed(t *testing.T) {
	ps := Policies()
	want := map[string]bool{"baseline": false, "DTexL": false, "HLB-flp2": false, "CG-square": false}
	for _, p := range ps {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("policy %q missing from Policies()", name)
		}
	}
}

func TestLateZCostsPerformance(t *testing.T) {
	early, err := Run(Config{Benchmark: "Mze", Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	late, err := Run(Config{Benchmark: "Mze", LateZ: true, Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	if late.QuadsCulled != 0 {
		t.Errorf("Late-Z culled %d quads", late.QuadsCulled)
	}
	if late.QuadsShaded <= early.QuadsShaded {
		t.Error("Late-Z did not shade more quads")
	}
	if late.FPS >= early.FPS {
		t.Error("Late-Z not slower than Early-Z")
	}
}

func TestSeedChangesScene(t *testing.T) {
	a, err := Run(Config{Benchmark: "CCS", Seed: 1, Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Benchmark: "CCS", Seed: 2, Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == b.Cycles && a.L2Accesses == b.L2Accesses {
		t.Error("different seeds produced identical results")
	}
}

func TestSceneTraceRoundTripThroughPublicAPI(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/scene.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportScene("SWa", testW, testH, 1, 0, f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Replaying the exported trace must reproduce the generated run
	// exactly.
	gen, err := Run(Config{Benchmark: "SWa", Width: testW, Height: testH})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := Run(Config{ScenePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Cycles != gen.Cycles || replay.L2Accesses != gen.L2Accesses ||
		replay.QuadsShaded != gen.QuadsShaded {
		t.Errorf("trace replay diverged: %d/%d cycles, %d/%d L2",
			replay.Cycles, gen.Cycles, replay.L2Accesses, gen.L2Accesses)
	}
	if replay.Benchmark != path {
		t.Errorf("replay label = %q", replay.Benchmark)
	}
}

func TestSceneTraceErrors(t *testing.T) {
	if _, err := Run(Config{ScenePath: "/does/not/exist.json"}); err == nil {
		t.Error("missing trace accepted")
	}
	if err := ExportScene("nope", testW, testH, 1, 0, io.Discard); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
