// Package dtexl is a cycle-approximate simulator of a Tile-Based-
// Rendering mobile GPU, built to reproduce "DTexL: Decoupled Raster
// Pipeline for Texture Locality" (MICRO 2022).
//
// The package exposes the evaluation's vocabulary directly: pick one of
// the Table I benchmarks, pick a policy — the paper's baseline, DTexL,
// any Fig. 8 subtile mapping, or any Fig. 6 quad grouping — and Run one
// frame. The Result carries the metrics every figure of the paper is
// built from: FPS, total L2 accesses, per-tile load imbalance, and the
// GPU energy estimate.
//
//	res, err := dtexl.Run(dtexl.Config{Benchmark: "TRu", Policy: "DTexL"})
//
// For regenerating whole figures, see cmd/dtexlbench and the Benchmark*
// functions in bench_test.go; DESIGN.md maps every table and figure of
// the paper to its harness.
package dtexl

import (
	"fmt"
	"io"
	"os"

	"dtexl/internal/core"
	"dtexl/internal/pipeline"
	"dtexl/internal/render"
	"dtexl/internal/sim"
	"dtexl/internal/trace"
)

// Config selects one simulation.
type Config struct {
	// Benchmark is a Table I alias ("CCS", "SoD", "TRu", "SWa", "CRa",
	// "RoK", "DDS", "Snp", "Mze", "GTr").
	Benchmark string
	// Policy is a named policy: "baseline", "baseline-decoupled",
	// "DTexL", a Fig. 8 mapping ("Zorder-const", "HLB-flp2", ...), or a
	// Fig. 6 grouping ("FG-xshift2", "CG-square", ...). See Policies.
	Policy string
	// Width, Height is the screen resolution; zero means the paper's
	// 1960x768 (Table II).
	Width, Height int
	// Seed selects the deterministic synthetic frame; zero means 1.
	Seed uint64
	// Frames simulates that many consecutive animation frames (a panning
	// camera) with warm caches; 0 or 1 simulates a single frame. Metrics
	// aggregate over all frames and FPS averages.
	Frames int
	// UpperBound rewrites the machine into Fig. 16's bound: one shader
	// core with a 4x-capacity texture L1.
	UpperBound bool
	// LateZ disables Early-Z, as when shaders write depth (§II-A): all
	// covered quads are shaded and depth resolves before blending.
	LateZ bool
	// Prefetch enables the decoupled access/execute texture prefetcher
	// (orthogonal to DTexL; see the abl-prefetch experiment).
	Prefetch bool
	// NUCA replaces the private L1 texture caches with a shared,
	// address-interleaved organization (the replication-free alternative
	// the paper cites; see the abl-nuca experiment).
	NUCA bool
	// ScenePath, when set, replays a scene trace (see ExportScene) instead
	// of generating Benchmark's synthetic frame; the resolution follows
	// the trace and Width/Height/Seed/Frames are ignored.
	ScenePath string
}

// Result reports one simulated frame.
type Result struct {
	Benchmark string
	Policy    string

	// Cycles is total frame time in GPU cycles; FPS = clock / Cycles.
	Cycles int64
	FPS    float64

	// L2Accesses is the paper's texture-locality metric (Figs. 2/11/16).
	L2Accesses uint64
	// L1TexHitRate is the aggregate hit rate of the private texture L1s.
	L1TexHitRate float64
	DRAMAccesses uint64

	QuadsShaded uint64
	QuadsCulled uint64
	// FragmentsShaded counts live SIMD lanes; edge quads run with helper
	// lanes masked, so this is below 4x QuadsShaded.
	FragmentsShaded uint64

	// TimeImbalance and QuadImbalance are the mean per-tile deviations of
	// SC execution time and quad counts (fractions of the mean; Figs.
	// 12/14/15). They are zero for decoupled or single-SC runs.
	TimeImbalance float64
	QuadImbalance float64

	// EnergyJoules is the estimated total GPU energy for the frame;
	// Energy breaks it down by component (nanojoules).
	EnergyJoules float64
	Energy       map[string]float64
}

// Run simulates one frame under cfg.
func Run(cfg Config) (*Result, error) {
	return run(cfg, nil)
}

// RenderPPM simulates one frame under cfg, writes the rendered image as
// a binary PPM (P6) to w, and returns the frame's metrics. The image is
// a pure function of the scene: every policy renders the identical frame
// (the §III-C correctness invariant), so this is mainly useful for
// inspecting the synthetic workloads and validating pipeline changes.
func RenderPPM(cfg Config, w io.Writer) (*Result, error) {
	width, height := cfg.Width, cfg.Height
	if width <= 0 {
		width = sim.DefaultOptions().Width
	}
	if height <= 0 {
		height = sim.DefaultOptions().Height
	}
	fb := render.NewFramebuffer(width, height)
	res, err := run(cfg, fb)
	if err != nil {
		return nil, err
	}
	if err := fb.WritePPM(w); err != nil {
		return nil, err
	}
	return res, nil
}

func run(cfg Config, fb *render.Framebuffer) (*Result, error) {
	if cfg.Benchmark == "" && cfg.ScenePath == "" {
		return nil, fmt.Errorf("dtexl: Benchmark must be set (one of %v), or ScenePath", trace.Aliases())
	}
	polName := cfg.Policy
	if polName == "" {
		polName = "baseline"
	}
	pol, err := core.PolicyByName(polName)
	if err != nil {
		return nil, err
	}
	opt := sim.DefaultOptions()
	if cfg.Width > 0 {
		opt.Width = cfg.Width
	}
	if cfg.Height > 0 {
		opt.Height = cfg.Height
	}
	if cfg.Seed != 0 {
		opt.Seed = cfg.Seed
	}
	opt.Frames = cfg.Frames
	mutate := func(pc *pipeline.Config) {
		if cfg.UpperBound {
			core.ApplyUpperBound(pc)
		}
		pc.LateZ = cfg.LateZ
		pc.TexturePrefetch = cfg.Prefetch
		pc.Hierarchy.NUCA = cfg.NUCA
		pc.RenderTarget = fb
	}
	var rr *sim.RunResult
	if cfg.ScenePath != "" {
		f, ferr := os.Open(cfg.ScenePath)
		if ferr != nil {
			return nil, ferr
		}
		scene, serr := trace.ReadScene(f)
		f.Close()
		if serr != nil {
			return nil, serr
		}
		if fb != nil && (fb.W != scene.Width || fb.H != scene.Height) {
			return nil, fmt.Errorf("dtexl: scene trace is %dx%d; set Width/Height to match for rendering", scene.Width, scene.Height)
		}
		rr, err = sim.RunScene(scene, pol, mutate)
	} else {
		rr, err = sim.RunOneWith(cfg.Benchmark, pol, opt, mutate)
	}
	if err != nil {
		return nil, err
	}
	m := rr.Metrics
	name := cfg.Benchmark
	if cfg.ScenePath != "" {
		name = cfg.ScenePath
	}
	return &Result{
		Benchmark:       name,
		Policy:          pol.Name,
		Cycles:          m.Cycles,
		FPS:             m.FPS,
		L2Accesses:      m.L2Accesses(),
		L1TexHitRate:    m.L1Tex.HitRate(),
		DRAMAccesses:    m.Events.DRAMAccesses,
		QuadsShaded:     m.Events.QuadsShaded,
		QuadsCulled:     m.Events.QuadsCulled,
		FragmentsShaded: m.Events.FragmentsShaded,
		TimeImbalance:   m.MeanTileTimeDeviation(),
		QuadImbalance:   m.MeanTileQuadDeviation(),
		EnergyJoules:    rr.Energy.Total() * 1e-9,
		Energy: map[string]float64{
			"static":   rr.Energy.Static,
			"alu":      rr.Energy.ALU,
			"l1":       rr.Energy.L1,
			"sampling": rr.Energy.Sampling,
			"l2":       rr.Energy.L2,
			"dram":     rr.Energy.DRAM,
			"vertex":   rr.Energy.Vertex,
			"flush":    rr.Energy.Flush,
			"raster":   rr.Energy.Raster,
		},
	}, nil
}

// BenchmarkInfo describes one Table I workload.
type BenchmarkInfo struct {
	Alias               string
	Name                string
	Genre               string
	Is2D                bool
	InstallsMillions    int
	TextureFootprintMiB float64
}

// Benchmarks lists the Table I suite in table order.
func Benchmarks() []BenchmarkInfo {
	var out []BenchmarkInfo
	for _, p := range trace.Profiles() {
		out = append(out, BenchmarkInfo{
			Alias:               p.Alias,
			Name:                p.Name,
			Genre:               p.Genre,
			Is2D:                p.Is2D,
			InstallsMillions:    p.Installs,
			TextureFootprintMiB: p.TextureFootprintMiB,
		})
	}
	return out
}

// Policies lists every named policy accepted by Config.Policy.
func Policies() []string { return core.PolicyNames() }

// ExportScene writes the synthetic frame a Config would simulate as a
// JSON scene trace, replayable later via Config.ScenePath — or editable
// and replaced with an externally captured draw stream.
func ExportScene(benchmark string, width, height int, seed uint64, frame int, w io.Writer) error {
	prof, err := trace.ProfileByAlias(benchmark)
	if err != nil {
		return err
	}
	if width <= 0 {
		width = sim.DefaultOptions().Width
	}
	if height <= 0 {
		height = sim.DefaultOptions().Height
	}
	if seed == 0 {
		seed = 1
	}
	return trace.WriteScene(w, trace.GenerateFrame(prof, width, height, seed, frame))
}
